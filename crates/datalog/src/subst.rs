//! Substitutions: finite maps from variables to terms.

use crate::atom::{Atom, Comparison, Literal};
use crate::clause::{Constraint, ConstraintHead, Query, Rule};
use crate::term::{Term, Var};
use std::collections::BTreeMap;
use std::fmt;

/// A substitution θ mapping variables to terms.
///
/// Substitutions are kept *idempotent*: no variable in the domain occurs in
/// any term of the range. [`Subst::bind`] maintains this invariant by
/// normalizing through existing bindings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<Var, Term>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the substitution is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Look up a variable's binding (after path compression through the
    /// map), if any.
    pub fn lookup(&self, v: &Var) -> Option<&Term> {
        self.map.get(v)
    }

    /// Resolve a term through the substitution until fixpoint.
    pub fn resolve(&self, t: &Term) -> Term {
        let mut cur = *t;
        let mut steps = 0;
        while let Term::Var(v) = &cur {
            match self.map.get(v) {
                Some(next) => {
                    cur = *next;
                    steps += 1;
                    // Idempotent substitutions terminate in one step, but be
                    // defensive against accidental chains.
                    if steps > self.map.len() + 1 {
                        break;
                    }
                }
                None => break,
            }
        }
        cur
    }

    /// Bind `v` to `t`, keeping the substitution idempotent. Returns
    /// `false` (and leaves the substitution unchanged) if the binding
    /// conflicts with an existing one.
    pub fn bind(&mut self, v: Var, t: Term) -> bool {
        let t = self.resolve(&t);
        match self.resolve(&Term::Var(v)) {
            Term::Var(root) => {
                if Term::Var(root) == t {
                    return true;
                }
                // Substitute the new binding into existing range terms to
                // preserve idempotence.
                let mut single = Subst::new();
                single.map.insert(root, t);
                for val in self.map.values_mut() {
                    *val = single.apply_term(val);
                }
                self.map.insert(root, t);
                true
            }
            Term::Const(c) => t == Term::Const(c),
        }
    }

    /// Bind `v` to `t` like [`Subst::bind`], but *record* the binding
    /// even when it is the identity (`v ↦ v`). One-way matching needs
    /// this: once a pattern variable has matched a target term — even a
    /// target variable of the same name — later occurrences of the
    /// pattern variable must match exactly that term.
    pub fn bind_exact(&mut self, v: Var, t: Term) -> bool {
        if Term::Var(v) == t {
            self.map.entry(v).or_insert(t);
            return true;
        }
        self.bind(v, t)
    }

    /// Apply the substitution to a term.
    pub fn apply_term(&self, t: &Term) -> Term {
        self.resolve(t)
    }

    /// Apply the substitution to an atom.
    pub fn apply_atom(&self, a: &Atom) -> Atom {
        Atom::new(a.pred, a.args.iter().map(|t| self.apply_term(t)).collect())
    }

    /// Apply the substitution to a comparison.
    pub fn apply_cmp(&self, c: &Comparison) -> Comparison {
        Comparison::new(self.apply_term(&c.lhs), c.op, self.apply_term(&c.rhs))
    }

    /// Apply the substitution to a literal.
    pub fn apply_literal(&self, l: &Literal) -> Literal {
        match l {
            Literal::Pos(a) => Literal::Pos(self.apply_atom(a)),
            Literal::Neg(a) => Literal::Neg(self.apply_atom(a)),
            Literal::Cmp(c) => Literal::Cmp(self.apply_cmp(c)),
        }
    }

    /// Apply the substitution to all body literals.
    pub fn apply_body(&self, body: &[Literal]) -> Vec<Literal> {
        body.iter().map(|l| self.apply_literal(l)).collect()
    }

    /// Apply the substitution to a rule.
    pub fn apply_rule(&self, r: &Rule) -> Rule {
        Rule::new(self.apply_atom(&r.head), self.apply_body(&r.body))
    }

    /// Apply the substitution to a constraint head.
    pub fn apply_head(&self, h: &ConstraintHead) -> ConstraintHead {
        match h {
            ConstraintHead::None => ConstraintHead::None,
            ConstraintHead::Atom(a) => ConstraintHead::Atom(self.apply_atom(a)),
            ConstraintHead::NegAtom(a) => ConstraintHead::NegAtom(self.apply_atom(a)),
            ConstraintHead::Cmp(c) => ConstraintHead::Cmp(self.apply_cmp(c)),
        }
    }

    /// Apply the substitution to a constraint.
    pub fn apply_constraint(&self, c: &Constraint) -> Constraint {
        Constraint {
            name: c.name.clone(),
            head: self.apply_head(&c.head),
            body: self.apply_body(&c.body),
        }
    }

    /// Apply the substitution to a query.
    pub fn apply_query(&self, q: &Query) -> Query {
        Query::new(
            q.name.clone(),
            q.projection.iter().map(|t| self.apply_term(t)).collect(),
            self.apply_body(&q.body),
        )
    }

    /// Iterate over the bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Term)> {
        self.map.iter()
    }

    /// Compose: the substitution that first applies `self`, then `other`.
    pub fn compose(&self, other: &Subst) -> Subst {
        let mut out = Subst::new();
        for (v, t) in &self.map {
            out.map.insert(*v, other.apply_term(t));
        }
        for (v, t) in &other.map {
            out.map.entry(*v).or_insert_with(|| *t);
        }
        // Drop trivial bindings v ↦ v.
        out.map.retain(|v, t| Term::Var(*v) != *t);
        out
    }

    /// Restrict the substitution to the given variables.
    pub fn restrict(&self, vars: &std::collections::BTreeSet<Var>) -> Subst {
        Subst {
            map: self
                .map
                .iter()
                .filter(|(v, _)| vars.contains(*v))
                .map(|(v, t)| (*v, *t))
                .collect(),
        }
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}/{t}")?;
        }
        f.write_str("}")
    }
}

/// Rename all variables of a constraint apart from the given "used" set by
/// appending a numeric suffix (standardizing apart before resolution-style
/// matching).
pub fn standardize_apart(c: &Constraint, used: &std::collections::BTreeSet<Var>) -> Constraint {
    let mut s = Subst::new();
    let mut counter = 0usize;
    let clash: Vec<Var> = c.vars().into_iter().filter(|v| used.contains(v)).collect();
    for v in clash {
        loop {
            counter += 1;
            let fresh = Var::new(format!("{}_{counter}", v.name()));
            if !used.contains(&fresh) && !c.vars().contains(&fresh) {
                s.bind(v, Term::Var(fresh));
                break;
            }
        }
    }
    s.apply_constraint(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;

    #[test]
    fn bind_and_apply() {
        let mut s = Subst::new();
        assert!(s.bind(Var::new("X"), Term::int(3)));
        assert_eq!(s.apply_term(&Term::var("X")), Term::int(3));
        assert_eq!(s.apply_term(&Term::var("Y")), Term::var("Y"));
    }

    #[test]
    fn bind_conflict_rejected() {
        let mut s = Subst::new();
        assert!(s.bind(Var::new("X"), Term::int(3)));
        assert!(!s.bind(Var::new("X"), Term::int(4)));
        assert!(s.bind(Var::new("X"), Term::int(3)));
    }

    #[test]
    fn bind_keeps_idempotence() {
        let mut s = Subst::new();
        assert!(s.bind(Var::new("X"), Term::var("Y")));
        assert!(s.bind(Var::new("Y"), Term::int(5)));
        // X must resolve all the way to 5 in a single application.
        assert_eq!(s.apply_term(&Term::var("X")), Term::int(5));
        // And the stored range must already be normalized.
        assert_eq!(s.lookup(&Var::new("X")), Some(&Term::int(5)));
    }

    #[test]
    fn bind_var_to_var_chains() {
        let mut s = Subst::new();
        assert!(s.bind(Var::new("X"), Term::var("Y")));
        assert!(s.bind(Var::new("X"), Term::var("Z")));
        // X ↦ Y, then binding X again unifies Y with Z.
        let x = s.apply_term(&Term::var("X"));
        let y = s.apply_term(&Term::var("Y"));
        assert_eq!(x, y);
    }

    #[test]
    fn compose_order() {
        let mut a = Subst::new();
        a.bind(Var::new("X"), Term::var("Y"));
        let mut b = Subst::new();
        b.bind(Var::new("Y"), Term::int(1));
        let c = a.compose(&b);
        assert_eq!(c.apply_term(&Term::var("X")), Term::int(1));
        assert_eq!(c.apply_term(&Term::var("Y")), Term::int(1));
    }

    #[test]
    fn apply_literal_forms() {
        let mut s = Subst::new();
        s.bind(Var::new("Age"), Term::int(25));
        let l = Literal::cmp(Term::var("Age"), CmpOp::Lt, Term::int(30));
        assert_eq!(s.apply_literal(&l).to_string(), "25 < 30");
    }

    #[test]
    fn standardize_apart_renames_clashing_vars() {
        use crate::clause::{Constraint, ConstraintHead};
        let ic = Constraint::new(
            ConstraintHead::Cmp(Comparison::new(Term::var("Age"), CmpOp::Gt, Term::int(30))),
            vec![Literal::pos(
                "faculty",
                vec![Term::var("X"), Term::var("Age")],
            )],
        );
        let used: std::collections::BTreeSet<Var> = [Var::new("Age")].into_iter().collect();
        let renamed = standardize_apart(&ic, &used);
        assert!(!renamed.vars().contains(&Var::new("Age")));
        assert!(renamed.vars().contains(&Var::new("X"))); // no clash, kept
    }

    #[test]
    fn restrict_keeps_only_requested() {
        let mut s = Subst::new();
        s.bind(Var::new("X"), Term::int(1));
        s.bind(Var::new("Y"), Term::int(2));
        let keep: std::collections::BTreeSet<Var> = [Var::new("X")].into_iter().collect();
        let r = s.restrict(&keep);
        assert_eq!(r.len(), 1);
        assert_eq!(r.apply_term(&Term::var("Y")), Term::var("Y"));
    }
}
