//! Atoms, comparisons and literals.

use crate::intern::Sym;
use crate::term::{Term, Var};
use std::fmt;

/// A predicate symbol. By convention predicate symbols start with a
/// lower-case letter (`faculty`, `takes_section`).
///
/// Backed by an interned [`Sym`]: `Copy`, and predicate equality inside
/// unification, subsumption and the residue indexes is a single integer
/// compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredSym(pub Sym);

impl PredSym {
    /// Create a predicate symbol.
    pub fn new(name: impl Into<Sym>) -> Self {
        PredSym(name.into())
    }

    /// The symbol's name.
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }
}

impl fmt::Display for PredSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<&str> for PredSym {
    fn from(s: &str) -> Self {
        PredSym(Sym::intern(s))
    }
}

impl From<String> for PredSym {
    fn from(s: String) -> Self {
        PredSym(Sym::intern(&s))
    }
}

/// An atom `p(t1, ..., tn)` over a database (or view) predicate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate symbol.
    pub pred: PredSym,
    /// The argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Create an atom.
    pub fn new(pred: impl Into<PredSym>, args: Vec<Term>) -> Self {
        Atom {
            pred: pred.into(),
            args,
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Iterate over the variables occurring in the atom (with duplicates).
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.args.iter().filter_map(Term::as_var)
    }

    /// Whether the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.pred)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            t.fmt(f)?;
        }
        f.write_str(")")
    }
}

/// Comparison operators for evaluable (built-in) atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator's logical negation (`<` ↦ `>=`, `=` ↦ `!=`, …).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with its operands swapped (`<` ↦ `>`, `=` ↦ `=`, …).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluate the operator on a concrete ordering result.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// An evaluable atom `t1 θ t2`, e.g. `Age > 30`, `Name1 = Name2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Comparison {
    /// Left operand.
    pub lhs: Term,
    /// The comparison operator.
    pub op: CmpOp,
    /// Right operand.
    pub rhs: Term,
}

impl Comparison {
    /// Create a comparison.
    pub fn new(lhs: Term, op: CmpOp, rhs: Term) -> Self {
        Comparison { lhs, op, rhs }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: Term, rhs: Term) -> Self {
        Comparison::new(lhs, CmpOp::Eq, rhs)
    }

    /// The logically negated comparison.
    pub fn negate(&self) -> Comparison {
        Comparison::new(self.lhs, self.op.negate(), self.rhs)
    }

    /// The same constraint with operands swapped (`X < Y` ↦ `Y > X`).
    pub fn flip(&self) -> Comparison {
        Comparison::new(self.rhs, self.op.flip(), self.lhs)
    }

    /// A canonical orientation: variable (or smaller term) on the left, so
    /// that `X = Y` and `Y = X` normalize identically.
    pub fn canonical(&self) -> Comparison {
        let flipped = self.flip();
        if format!("{flipped}") < format!("{self}") {
            flipped
        } else {
            *self
        }
    }

    /// Iterate over the variables in the comparison.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.lhs.as_var().into_iter().chain(self.rhs.as_var())
    }

    /// Whether both operands are constants.
    pub fn is_ground(&self) -> bool {
        self.lhs.is_ground() && self.rhs.is_ground()
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// A body literal: a positive atom, a negative atom, or a comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// `p(...)`
    Pos(Atom),
    /// `not p(...)`
    Neg(Atom),
    /// `t1 θ t2`
    Cmp(Comparison),
}

impl Literal {
    /// Positive literal constructor.
    pub fn pos(pred: impl Into<PredSym>, args: Vec<Term>) -> Self {
        Literal::Pos(Atom::new(pred, args))
    }

    /// Negative literal constructor.
    pub fn neg(pred: impl Into<PredSym>, args: Vec<Term>) -> Self {
        Literal::Neg(Atom::new(pred, args))
    }

    /// Comparison literal constructor.
    pub fn cmp(lhs: Term, op: CmpOp, rhs: Term) -> Self {
        Literal::Cmp(Comparison::new(lhs, op, rhs))
    }

    /// The atom inside, if this is a (positive or negative) database literal.
    pub fn atom(&self) -> Option<&Atom> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => Some(a),
            Literal::Cmp(_) => None,
        }
    }

    /// The predicate symbol, if this is a database literal.
    pub fn pred(&self) -> Option<&PredSym> {
        self.atom().map(|a| &a.pred)
    }

    /// All variables occurring in the literal (with duplicates).
    pub fn vars(&self) -> Vec<&Var> {
        match self {
            Literal::Pos(a) | Literal::Neg(a) => a.vars().collect(),
            Literal::Cmp(c) => c.vars().collect(),
        }
    }

    /// Whether this literal is positive (a plain database atom).
    pub fn is_positive(&self) -> bool {
        matches!(self, Literal::Pos(_))
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Pos(a) => a.fmt(f),
            Literal::Neg(a) => write!(f, "not {a}"),
            Literal::Cmp(c) => c.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn cmp_op_negate_flip_roundtrip() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn cmp_op_test_semantics() {
        assert!(CmpOp::Lt.test(Ordering::Less));
        assert!(!CmpOp::Lt.test(Ordering::Equal));
        assert!(CmpOp::Le.test(Ordering::Equal));
        assert!(CmpOp::Ge.test(Ordering::Greater));
        assert!(CmpOp::Ne.test(Ordering::Less));
        assert!(!CmpOp::Eq.test(Ordering::Greater));
    }

    #[test]
    fn atom_display() {
        let a = Atom::new(
            "faculty",
            vec![Term::var("Sec"), Term::var("F"), Term::var("Age")],
        );
        assert_eq!(a.to_string(), "faculty(Sec, F, Age)");
        assert_eq!(a.arity(), 3);
        assert!(!a.is_ground());
    }

    #[test]
    fn literal_display() {
        let l = Literal::cmp(Term::var("Age"), CmpOp::Gt, Term::int(30));
        assert_eq!(l.to_string(), "Age > 30");
        let n = Literal::neg("faculty", vec![Term::var("X")]);
        assert_eq!(n.to_string(), "not faculty(X)");
    }

    #[test]
    fn comparison_canonical_orients_consistently() {
        let c1 = Comparison::new(Term::var("X"), CmpOp::Eq, Term::var("Y"));
        let c2 = Comparison::new(Term::var("Y"), CmpOp::Eq, Term::var("X"));
        assert_eq!(c1.canonical(), c2.canonical());
        let c3 = Comparison::new(Term::var("X"), CmpOp::Lt, Term::var("Y"));
        let c4 = Comparison::new(Term::var("Y"), CmpOp::Gt, Term::var("X"));
        assert_eq!(c3.canonical(), c4.canonical());
    }

    #[test]
    fn literal_vars() {
        let l = Literal::pos("takes", vec![Term::var("X"), Term::var("Y")]);
        let vs: Vec<_> = l.vars().into_iter().map(|v| v.name().to_string()).collect();
        assert_eq!(vs, vec!["X", "Y"]);
    }
}
