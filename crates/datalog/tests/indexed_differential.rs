//! Property-based differential test for the indexed executor.
//!
//! Each generated case builds a random EDB (mixed int/string/oid
//! columns), declares a random assortment of hash and ordered indexes,
//! and evaluates a random conjunctive query — positive atoms, optional
//! negation, optional comparison literals — under both
//! [`EvalOptions::default`] (indexes + chain fusion) and
//! [`EvalOptions::scan_only`] (the pre-index engine). The two executors
//! must agree exactly: identical sorted answer sets on success, and
//! identical error status on failure (an index probe must never paper
//! over an incomparable-operand error that the scan would raise).
//!
//! Cases are driven by a seeded LCG so every run — including the
//! `--no-default-features` CI leg — replays the same 150+ cases
//! deterministically; a failure prints its seed for replay.

use sqo_datalog::eval::{answer_query_with, EvalOptions};
use sqo_datalog::program::EdbDatabase;
use sqo_datalog::{Atom, CmpOp, Comparison, Const, Literal, PredSym, Query, Term};

const VARS: [&str; 4] = ["X", "Y", "Z", "W"];
const PREDS: [(&str, usize); 3] = [("p", 2), ("q", 2), ("r", 3)];
const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
    CmpOp::Eq,
    CmpOp::Ne,
];

/// Minimal deterministic PRNG (Numerical Recipes LCG) — no external
/// dependency, stable across platforms and feature sets.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// A random constant over a mixed domain: ints dominate (so range
/// probes fire), with strings and OIDs mixed in to stress the
/// type-homogeneity guards and incomparable-operand error paths.
fn rand_const(rng: &mut Lcg) -> Const {
    match rng.below(7) {
        0..=3 => Const::Int(rng.below(6) as i64),
        4 | 5 => Const::Str(["a", "b", "c"][rng.below(3) as usize].into()),
        _ => Const::Oid(rng.below(4)),
    }
}

fn rand_atom(rng: &mut Lcg) -> Atom {
    let (name, arity) = PREDS[rng.below(PREDS.len() as u64) as usize];
    let args = (0..arity)
        .map(|_| {
            if rng.chance(80) {
                Term::var(VARS[rng.below(VARS.len() as u64) as usize])
            } else {
                Term::Const(rand_const(rng))
            }
        })
        .collect();
    Atom::new(name, args)
}

/// Build a random EDB with random index declarations, then a *safe*
/// random query (negation and comparisons restricted to positively
/// bound variables).
fn rand_case(rng: &mut Lcg) -> (EdbDatabase, Query) {
    let mut db = EdbDatabase::new();
    for (name, arity) in PREDS {
        let pred = PredSym::new(name);
        db.declare(pred, arity);
        for _ in 0..rng.below(14) {
            let tuple: Vec<Const> = (0..arity).map(|_| rand_const(rng)).collect();
            db.insert(pred, tuple).unwrap();
        }
        for col in 0..arity {
            if rng.chance(50) {
                db.declare_hash_index(pred, col);
            }
            if rng.chance(50) {
                db.declare_ordered_index(pred, col);
            }
        }
    }

    let pos: Vec<Atom> = (0..1 + rng.below(3)).map(|_| rand_atom(rng)).collect();

    // Positively bound variables, in first-occurrence order.
    let mut bound: Vec<Term> = Vec::new();
    for a in &pos {
        for t in &a.args {
            if matches!(t, Term::Var(_)) && !bound.contains(t) {
                bound.push(*t);
            }
        }
    }
    if bound.is_empty() {
        // Fully ground body; project a constant to keep the query safe.
        bound.push(Term::int(0));
    }

    let mut body: Vec<Literal> = pos.into_iter().map(Literal::Pos).collect();
    if rng.chance(40) {
        let n = rand_atom(rng);
        // Safety: every variable of a negated atom must occur positively.
        if n.args
            .iter()
            .all(|t| !matches!(t, Term::Var(_)) || bound.contains(t))
        {
            body.push(Literal::Neg(n));
        }
    }
    for _ in 0..rng.below(3) {
        let v = Term::var(VARS[rng.below(VARS.len() as u64) as usize]);
        if bound.contains(&v) {
            let op = CMP_OPS[rng.below(CMP_OPS.len() as u64) as usize];
            body.push(Literal::Cmp(Comparison::new(
                v,
                op,
                Term::Const(rand_const(rng)),
            )));
        }
    }

    (db, Query::new("d", bound, body))
}

fn run(db: &EdbDatabase, q: &Query, opts: &EvalOptions) -> Result<Vec<Vec<Const>>, String> {
    match answer_query_with(db, q, opts) {
        Ok((mut rows, _)) => {
            rows.sort();
            Ok(rows)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Indexed and scan-only execution agree on every random case:
/// identical sorted answer sets, or errors on both sides.
#[test]
fn indexed_matches_scan_only_on_random_cases() {
    let mut nonempty = 0usize;
    let mut errored = 0usize;
    for seed in 0u64..200 {
        let mut rng = Lcg(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1));
        let (db, q) = rand_case(&mut rng);
        let indexed = run(&db, &q, &EvalOptions::default());
        let scan = run(&db, &q, &EvalOptions::scan_only());
        match (&indexed, &scan) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "seed {seed}: answer sets differ for [{q}]");
                if !a.is_empty() {
                    nonempty += 1;
                }
            }
            (Err(_), Err(_)) => errored += 1,
            _ => panic!(
                "seed {seed}: error-status divergence for [{q}]: indexed={indexed:?} scan={scan:?}"
            ),
        }
    }
    // The generator must actually exercise both interesting regimes.
    assert!(
        nonempty >= 20,
        "only {nonempty} non-empty cases — generator too weak"
    );
    assert!(errored >= 1, "no incomparable-operand cases generated");
}

/// Deterministic chain-fusion differential: a 3-hop path query over a
/// dense binary relation, with hash indexes on both endpoints — the
/// shape the fused index-nested-loop walk targets.
#[test]
fn chain_fusion_matches_scan_only() {
    let mut db = EdbDatabase::new();
    let e = PredSym::new("e");
    db.declare(e, 2);
    for i in 0u64..40 {
        for j in 0u64..40 {
            if (i * 7 + j * 3) % 11 == 0 {
                db.insert(e, vec![Const::Oid(i), Const::Oid(j)]).unwrap();
            }
        }
    }
    db.declare_hash_index(e, 0);
    db.declare_hash_index(e, 1);

    let (x, y, z, w) = (
        Term::var("X"),
        Term::var("Y"),
        Term::var("Z"),
        Term::var("W"),
    );
    let q = Query::new(
        "chain",
        vec![x, w],
        vec![
            Literal::Pos(Atom::new("e", vec![x, y])),
            Literal::Pos(Atom::new("e", vec![y, z])),
            Literal::Pos(Atom::new("e", vec![z, w])),
        ],
    );
    let (mut fused, stats) = answer_query_with(&db, &q, &EvalOptions::default()).unwrap();
    let (mut scan, _) = answer_query_with(&db, &q, &EvalOptions::scan_only()).unwrap();
    fused.sort();
    scan.sort();
    assert_eq!(fused, scan);
    assert!(
        stats.chains_fused >= 1,
        "expected the 3-hop path to fuse, stats: {stats:?}"
    );
}
