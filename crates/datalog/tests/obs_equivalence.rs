//! Counter-equivalence between the parallel and sequential Step-3 search
//! backends: both must report byte-identical observability totals for the
//! same input, because the parallel frontier performs exactly the same
//! `analyse` calls and worker-thread counters merge at the sequential join.
//!
//! This file runs under both feature configurations in CI (`--features
//! parallel` is the default; `--no-default-features` forces `optimize` onto
//! the sequential path), so equality here pins the cross-build guarantee:
//! `explain_json` counter totals do not depend on the chosen backend.

use sqo_datalog::parser::{parse_constraint, parse_query};
use sqo_datalog::residue::ResidueSet;
use sqo_datalog::search::{self, SearchConfig};
use sqo_datalog::transform::TransformContext;
use sqo_obs as obs;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Serializes the tests in this binary: counter deltas are computed against
/// the process-global registry.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The paper's university constraints at the Datalog level (Example 1 plus
/// enough extra ICs to keep several candidates live per search level, so
/// the parallel backend actually fans out).
fn university_ctx() -> TransformContext {
    let ics = [
        "ic IC1: Age > 30 <- faculty(Sec, Fac, Age).",
        "ic IC2: Age < 70 <- faculty(Sec, Fac, Age).",
        "ic IC5: Fac > 0 <- faculty(Sec, Fac, Age).",
        "ic IC6: Sec > 0 <- takes_section(St, Sec).",
    ]
    .iter()
    .map(|s| parse_constraint(s).unwrap())
    .collect();
    TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new())
}

/// Counter totals recorded while running `f`, as a stable sorted map.
fn counters_of(f: impl FnOnce()) -> BTreeMap<&'static str, u64> {
    let before = obs::snapshot();
    f();
    obs::snapshot().since(&before).counters
}

#[test]
fn parallel_and_sequential_counter_totals_identical() {
    let _g = lock();
    let ctx = university_ctx();
    let cfg = SearchConfig::default();
    for src in [
        // Example 1's restriction attachment (satisfiable).
        "Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age)",
        // Example 1's contradiction (refuted by IC1).
        "Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age), Age < 18",
        // A wider query keeping several residues applicable at once.
        "Q(N1, N2) <- student(S1, N1), student(S2, N2), takes_section(S1, Sec1), \
         takes_section(S2, Sec2), faculty(Sec1, F1, A1), faculty(Sec2, F2, A2)",
    ] {
        let q = parse_query(src).unwrap();
        let par = counters_of(|| {
            std::hint::black_box(search::optimize(&q, &ctx, &cfg));
        });
        let seq = counters_of(|| {
            std::hint::black_box(search::optimize_sequential(&q, &ctx, &cfg));
        });
        assert_eq!(par, seq, "backend counter totals must match for `{src}`");
        assert!(
            par["unify.attempts"] > 0,
            "instrumentation fired for `{src}`"
        );
        assert!(par["search.levels"] > 0);
    }
}

#[test]
fn counter_totals_serialize_byte_identically() {
    let _g = lock();
    let ctx = university_ctx();
    let cfg = SearchConfig::default();
    let q =
        parse_query("Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age)")
            .unwrap();
    let render = |counters: BTreeMap<&'static str, u64>| {
        obs::Snapshot {
            counters,
            spans: BTreeMap::new(),
        }
        .to_json()
    };
    let par = render(counters_of(|| {
        std::hint::black_box(search::optimize(&q, &ctx, &cfg));
    }));
    let seq = render(counters_of(|| {
        std::hint::black_box(search::optimize_sequential(&q, &ctx, &cfg));
    }));
    // Span timings necessarily differ run to run; the counter section is
    // the machine-consumed part and must be byte-identical.
    assert_eq!(par, seq);
}
