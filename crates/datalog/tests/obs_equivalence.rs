//! Counter-equivalence between the parallel and sequential Step-3 search
//! backends: both must report byte-identical observability totals for the
//! same input, because the parallel frontier performs exactly the same
//! `analyse` calls and worker-thread counters merge at the sequential join.
//!
//! This file runs under both feature configurations in CI (`--features
//! parallel` is the default; `--no-default-features` forces `optimize` onto
//! the sequential path), so equality here pins the cross-build guarantee:
//! `explain_json` counter totals do not depend on the chosen backend.

use sqo_datalog::parser::{parse_constraint, parse_query};
use sqo_datalog::residue::ResidueSet;
use sqo_datalog::search::{self, SearchConfig};
use sqo_datalog::transform::TransformContext;
use sqo_obs as obs;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Serializes the tests in this binary: counter deltas are computed against
/// the process-global registry.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The paper's university constraints at the Datalog level (Example 1 plus
/// enough extra ICs to keep several candidates live per search level, so
/// the parallel backend actually fans out).
fn university_ctx() -> TransformContext {
    let ics = [
        "ic IC1: Age > 30 <- faculty(Sec, Fac, Age).",
        "ic IC2: Age < 70 <- faculty(Sec, Fac, Age).",
        "ic IC5: Fac > 0 <- faculty(Sec, Fac, Age).",
        "ic IC6: Sec > 0 <- takes_section(St, Sec).",
    ]
    .iter()
    .map(|s| parse_constraint(s).unwrap())
    .collect();
    TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new())
}

/// Counter totals recorded while running `f`, as a stable sorted map.
fn counters_of(f: impl FnOnce()) -> BTreeMap<&'static str, u64> {
    let before = obs::snapshot();
    f();
    obs::snapshot().since(&before).counters
}

#[test]
fn parallel_and_sequential_counter_totals_identical() {
    let _g = lock();
    let ctx = university_ctx();
    let cfg = SearchConfig::default();
    for src in [
        // Example 1's restriction attachment (satisfiable).
        "Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age)",
        // Example 1's contradiction (refuted by IC1).
        "Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age), Age < 18",
        // A wider query keeping several residues applicable at once.
        "Q(N1, N2) <- student(S1, N1), student(S2, N2), takes_section(S1, Sec1), \
         takes_section(S2, Sec2), faculty(Sec1, F1, A1), faculty(Sec2, F2, A2)",
    ] {
        let q = parse_query(src).unwrap();
        let par = counters_of(|| {
            std::hint::black_box(search::optimize(&q, &ctx, &cfg));
        });
        let seq = counters_of(|| {
            std::hint::black_box(search::optimize_sequential(&q, &ctx, &cfg));
        });
        assert_eq!(par, seq, "backend counter totals must match for `{src}`");
        assert!(
            par["unify.attempts"] > 0,
            "instrumentation fired for `{src}`"
        );
        assert!(par["search.levels"] > 0);
    }
}

#[test]
fn counter_totals_serialize_byte_identically() {
    let _g = lock();
    let ctx = university_ctx();
    let cfg = SearchConfig::default();
    let q =
        parse_query("Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age)")
            .unwrap();
    let render = |counters: BTreeMap<&'static str, u64>| {
        obs::Snapshot {
            counters,
            spans: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
        .to_json()
    };
    let par = render(counters_of(|| {
        std::hint::black_box(search::optimize(&q, &ctx, &cfg));
    }));
    let seq = render(counters_of(|| {
        std::hint::black_box(search::optimize_sequential(&q, &ctx, &cfg));
    }));
    // Span timings necessarily differ run to run; the counter section is
    // the machine-consumed part and must be byte-identical.
    assert_eq!(par, seq);
}

/// Histogram sample counts (not timings, which necessarily vary) must be
/// backend-independent: both search paths complete the same spans, and the
/// per-thread histogram merge — element-wise bucket addition, like the
/// counter merge — cannot depend on worker interleaving. Deterministic
/// samples recorded from scoped workers must serialize byte-identically to
/// the same samples recorded sequentially.
#[test]
fn histogram_merge_is_backend_and_interleaving_independent() {
    let _g = lock();
    let ctx = university_ctx();
    let cfg = SearchConfig::default();
    let q =
        parse_query("Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age)")
            .unwrap();
    let hist_counts = |f: &dyn Fn()| {
        let before = obs::snapshot();
        f();
        let delta = obs::snapshot().since(&before);
        delta
            .hists
            .iter()
            .map(|(name, h)| (*name, h.count()))
            .collect::<BTreeMap<_, _>>()
    };
    let par = hist_counts(&|| {
        std::hint::black_box(search::optimize(&q, &ctx, &cfg));
    });
    let seq = hist_counts(&|| {
        std::hint::black_box(search::optimize_sequential(&q, &ctx, &cfg));
    });
    assert_eq!(par, seq, "per-span histogram sample counts must match");
    assert_eq!(par.get("step3.search"), Some(&1));

    // Deterministic values, parallel merge vs sequential reference.
    let before = obs::snapshot();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            s.spawn(move || {
                for i in 0..64u64 {
                    obs::record_hist("equiv.hist.pin", (t * 64 + i) * 31 % 4093);
                }
                obs::flush_local();
            });
        }
    });
    let parallel = obs::snapshot().since(&before);
    let before = obs::snapshot();
    for v in 0..256u64 {
        obs::record_hist("equiv.hist.pin", v * 31 % 4093);
    }
    let sequential = obs::snapshot().since(&before);
    assert_eq!(
        parallel.hists["equiv.hist.pin"],
        sequential.hists["equiv.hist.pin"]
    );
    assert_eq!(
        parallel.hists["equiv.hist.pin"].summary_json(),
        sequential.hists["equiv.hist.pin"].summary_json()
    );
}

/// A stable rendering of a search outcome: every variant's query text and
/// step notes, or the contradiction's justification.
fn outcome_fingerprint(o: &search::Outcome) -> String {
    match o {
        search::Outcome::Contradiction {
            ic_name,
            note,
            steps,
        } => format!(
            "contradiction ic={ic_name:?} note={note} steps=[{}]",
            steps
                .iter()
                .map(|s| s.note.clone())
                .collect::<Vec<_>>()
                .join("; ")
        ),
        search::Outcome::Equivalents(vs) => vs
            .iter()
            .map(|v| {
                format!(
                    "{} | steps=[{}]",
                    v.query,
                    v.steps
                        .iter()
                        .map(|s| s.note.clone())
                        .collect::<Vec<_>>()
                        .join("; ")
                )
            })
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

/// Fifty seeded random queries against randomized range ICs: the parallel
/// and sequential backends must produce byte-identical outcomes *and*
/// byte-identical counter totals for every one. Because this file also
/// runs in CI under `--no-default-features` (where `optimize` itself
/// takes the sequential path), equality here pins the cross-build
/// guarantee transitively: parallel-build output ≡ sequential output ≡
/// no-default-features output, byte for byte.
#[test]
fn randomized_sweep_backends_byte_identical() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let _g = lock();
    let cfg = SearchConfig::default();
    let rels: [(&str, usize); 3] = [("p", 2), ("q", 2), ("r", 3)];
    for seed in 0u64..50 {
        let mut rng = StdRng::seed_from_u64(0xD1FF ^ seed.wrapping_mul(0x9E37_79B9));

        // 1–3 random range ICs over the relations.
        let n_ics = 1 + rng.gen_range(0usize..3);
        let ics = (0..n_ics)
            .map(|n| {
                let (rel, arity) = rels[rng.gen_range(0usize..rels.len())];
                let args: Vec<String> = (0..arity).map(|j| format!("V{j}")).collect();
                let v = rng.gen_range(0usize..arity);
                let op = ["<", "<=", ">", ">="][rng.gen_range(0usize..4)];
                let k = rng.gen_range(0i64..100);
                parse_constraint(&format!(
                    "ic S{n}: V{v} {op} {k} <- {rel}({}).",
                    args.join(", ")
                ))
                .unwrap()
            })
            .collect();
        let ctx = TransformContext::new(ResidueSet::compile(ics), vec![], BTreeMap::new());

        // A random conjunctive query joined on a shared first variable,
        // with an optional restriction that may interact with the ICs.
        let n_atoms = 1 + rng.gen_range(0usize..3);
        let mut body: Vec<String> = (0..n_atoms)
            .map(|i| {
                let (rel, arity) = rels[rng.gen_range(0usize..rels.len())];
                let args: Vec<String> = (0..arity)
                    .map(|j| format!("X{}_{j}", i.min(1) * i))
                    .collect();
                format!("{rel}(X, {})", args[1..].join(", "))
            })
            .collect();
        if rng.gen_bool(0.6) {
            let op = ["<", "<=", ">", ">="][rng.gen_range(0usize..4)];
            body.push(format!("X {op} {}", rng.gen_range(0i64..100)));
        }
        let q = parse_query(&format!("Q(X) <- {}", body.join(", "))).unwrap();

        let before_par = obs::snapshot();
        let par = search::optimize(&q, &ctx, &cfg);
        let par_counters = obs::snapshot().since(&before_par).counters;
        let before_seq = obs::snapshot();
        let seq = search::optimize_sequential(&q, &ctx, &cfg);
        let seq_counters = obs::snapshot().since(&before_seq).counters;

        assert_eq!(
            outcome_fingerprint(&par),
            outcome_fingerprint(&seq),
            "seed {seed}: backends disagree on `{q}`"
        );
        assert_eq!(
            par_counters, seq_counters,
            "seed {seed}: counter totals diverge on `{q}`"
        );
    }
}
