//! Randomized semantic-equivalence properties of the canonical form and
//! of standardize-apart, feeding the differential fuzz harness's core
//! assumption: **`canonical_hash` agreement implies answer-set
//! equality**. The Step-3 search dedups variants on `canonical_hash`, so
//! if two alpha-variant queries ever hashed equal while answering
//! differently, the search could silently drop a semantically distinct
//! candidate — or the plan cache could retarget a wrong template.
//!
//! The suite generates 200 query pairs per property from a seeded PRNG
//! (deterministic, no time dependence): alpha-variants (variable
//! permutation + body shuffle) must agree on hash, key, and answers;
//! independently generated pairs must answer identically *whenever*
//! their hashes agree; and standardizing constraints/residues apart from
//! a query's variable set must never capture a query variable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqo_datalog::eval::answer_query;
use sqo_datalog::parser::parse_constraint;
use sqo_datalog::program::EdbDatabase;
use sqo_datalog::residue::{standardize_residue_apart, ResidueSet};
use sqo_datalog::subst::standardize_apart;
use sqo_datalog::{Atom, CmpOp, Comparison, Const, Literal, PredSym, Query, Term, Var};
use std::collections::BTreeSet;

const PAIRS: usize = 200;
const VAR_NAMES: [&str; 5] = ["V0", "V1", "V2", "V3", "V4"];

/// A fixed EDB: p/2, q/2, r/3 over a small integer domain, dense enough
/// that random conjunctive joins usually have non-empty answers.
fn random_edb(rng: &mut StdRng) -> EdbDatabase {
    let mut db = EdbDatabase::new();
    let specs: [(&str, usize); 3] = [("p", 2), ("q", 2), ("r", 3)];
    for (name, arity) in specs {
        let pred = PredSym::new(name);
        db.declare(pred, arity);
        let tuples = 8 + rng.gen_range(0usize..8);
        for _ in 0..tuples {
            let t: Vec<Const> = (0..arity)
                .map(|_| Const::Int(rng.gen_range(0i64..4)))
                .collect();
            let _ = db.insert(pred, t);
        }
    }
    db
}

fn random_term(rng: &mut StdRng) -> Term {
    if rng.gen_bool(0.75) {
        Term::var(VAR_NAMES[rng.gen_range(0usize..VAR_NAMES.len())])
    } else {
        Term::int(rng.gen_range(0i64..4))
    }
}

/// A random safe conjunctive query over the EDB relations, with an
/// optional comparison on a body variable.
fn random_query(rng: &mut StdRng) -> Query {
    let n_atoms = rng.gen_range(1usize..4);
    let mut body: Vec<Literal> = Vec::new();
    for _ in 0..n_atoms {
        let (name, arity) = [("p", 2usize), ("q", 2), ("r", 3)][rng.gen_range(0usize..3)];
        let args: Vec<Term> = (0..arity).map(|_| random_term(rng)).collect();
        body.push(Literal::Pos(Atom::new(name, args)));
    }
    let body_vars: Vec<Var> = {
        let mut vs = BTreeSet::new();
        for l in &body {
            if let Literal::Pos(a) = l {
                for t in &a.args {
                    if let Term::Var(v) = t {
                        vs.insert(*v);
                    }
                }
            }
        }
        vs.into_iter().collect()
    };
    if body_vars.is_empty() {
        // All-constant body: still a valid boolean-style query; project
        // a constant to keep it safe.
        return Query::new("q", vec![Term::int(0)], body);
    }
    if rng.gen_bool(0.5) {
        let v = body_vars[rng.gen_range(0usize..body_vars.len())];
        let op = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][rng.gen_range(0usize..4)];
        body.push(Literal::Cmp(Comparison::new(
            Term::Var(v),
            op,
            Term::int(rng.gen_range(0i64..4)),
        )));
    }
    let n_proj = rng.gen_range(1usize..3.min(body_vars.len()) + 1);
    let mut proj_vars = body_vars.clone();
    // Deterministic shuffle by repeated removal.
    let mut projection = Vec::new();
    for _ in 0..n_proj {
        projection.push(Term::Var(
            proj_vars.remove(rng.gen_range(0usize..proj_vars.len())),
        ));
    }
    Query::new("q", projection, body)
}

fn rename_term(t: &Term, map: &dyn Fn(&Var) -> Var) -> Term {
    match t {
        Term::Var(v) => Term::Var(map(v)),
        c => *c,
    }
}

/// An alpha-variant: every variable renamed through a permutation of a
/// fresh namespace, and the body literals rotated.
fn alpha_variant(rng: &mut StdRng, q: &Query) -> Query {
    let vars: Vec<Var> = q.vars().into_iter().collect();
    let mut targets: Vec<String> = (0..vars.len()).map(|i| format!("W{i}")).collect();
    for i in (1..targets.len()).rev() {
        targets.swap(i, rng.gen_range(0usize..i + 1));
    }
    let map = move |v: &Var| -> Var {
        let idx = vars.iter().position(|x| x == v).expect("var in query");
        Var::new(targets[idx].clone())
    };
    let rename_lit = |l: &Literal| match l {
        Literal::Pos(a) => Literal::Pos(Atom::new(
            a.pred,
            a.args.iter().map(|t| rename_term(t, &map)).collect(),
        )),
        Literal::Neg(a) => Literal::Neg(Atom::new(
            a.pred,
            a.args.iter().map(|t| rename_term(t, &map)).collect(),
        )),
        Literal::Cmp(c) => Literal::Cmp(Comparison::new(
            rename_term(&c.lhs, &map),
            c.op,
            rename_term(&c.rhs, &map),
        )),
    };
    let mut body: Vec<Literal> = q.body.iter().map(rename_lit).collect();
    if body.len() > 1 {
        let rot = rng.gen_range(0usize..body.len());
        body.rotate_left(rot);
    }
    Query::new(
        q.name.as_str(),
        q.projection.iter().map(|t| rename_term(t, &map)).collect(),
        body,
    )
}

fn answers(db: &EdbDatabase, q: &Query) -> Vec<Vec<Const>> {
    let (mut rows, _) = answer_query(db, q).expect("query evaluates");
    rows.sort();
    rows
}

/// Whether all body literals have distinct variable-blanked shapes. The
/// canonical form is alpha/reorder-invariant only in this case (duplicate
/// shapes can tie-break differently, which merely weakens dedup — it can
/// never merge semantically distinct queries).
fn shapes_distinct(q: &Query) -> bool {
    let blank = |t: &Term| match t {
        Term::Var(_) => "_".to_string(),
        Term::Const(c) => c.to_string(),
    };
    let mut shapes: Vec<String> = q
        .body
        .iter()
        .map(|l| match l {
            Literal::Pos(a) | Literal::Neg(a) => format!(
                "{}({})",
                a.pred,
                a.args.iter().map(&blank).collect::<Vec<_>>().join(",")
            ),
            Literal::Cmp(c) => {
                let c = c.canonical();
                format!("{}{}{}", blank(&c.lhs), c.op, blank(&c.rhs))
            }
        })
        .collect();
    let n = shapes.len();
    shapes.sort();
    shapes.dedup();
    shapes.len() == n
}

#[test]
fn alpha_variants_hash_equal_and_answer_equal() {
    let mut rng = StdRng::seed_from_u64(0xA11A);
    let db = random_edb(&mut rng);
    let mut hash_checked = 0usize;
    for i in 0..PAIRS {
        let q = random_query(&mut rng);
        let v = alpha_variant(&mut rng, &q);
        // Alpha-variants are semantically identical unconditionally.
        assert_eq!(
            answers(&db, &q),
            answers(&db, &v),
            "pair {i}: alpha-variants must answer identically\n  q: {q}\n  v: {v}"
        );
        // The canonical form is rename/reorder-invariant when body shapes
        // are distinct (documented caveat: duplicate shapes may tie-break
        // differently, costing only dedup precision, never soundness).
        if shapes_distinct(&q) {
            hash_checked += 1;
            assert_eq!(
                q.canonical_hash(),
                v.canonical_hash(),
                "pair {i}: alpha-variants must hash identically\n  q: {q}\n  v: {v}"
            );
            assert_eq!(
                q.canonical_key(),
                v.canonical_key(),
                "pair {i}: alpha-variants must render identically"
            );
        }
        // Either way, hash agreement must imply answer equality (checked
        // above) and key/hash must agree with each other.
        assert_eq!(
            q.canonical_hash() == v.canonical_hash(),
            q.canonical_key() == v.canonical_key(),
            "pair {i}: canonical_hash and canonical_key disagree\n  q: {q}\n  v: {v}"
        );
    }
    assert!(
        hash_checked > PAIRS / 2,
        "shape-distinct cases too rare ({hash_checked}/{PAIRS}) to pin the invariant"
    );
}

#[test]
fn hash_agreement_implies_answer_equality() {
    let mut rng = StdRng::seed_from_u64(0xB22B);
    let db = random_edb(&mut rng);
    let mut agreements = 0usize;
    for i in 0..PAIRS {
        let a = random_query(&mut rng);
        let b = random_query(&mut rng);
        if a.canonical_hash() != b.canonical_hash() {
            continue;
        }
        agreements += 1;
        assert_eq!(
            answers(&db, &a),
            answers(&db, &b),
            "pair {i}: hash-equal queries answered differently\n  a: {a}\n  b: {b}"
        );
    }
    // Independent draws rarely collide; make sure the property was at
    // least exercised through the alpha path too.
    let q = random_query(&mut rng);
    let v = alpha_variant(&mut rng, &q);
    assert_eq!(q.canonical_hash(), v.canonical_hash());
    assert_eq!(answers(&db, &q), answers(&db, &v));
    // `agreements` may well be zero — that is itself evidence the hash
    // separates distinct shapes; nothing to assert beyond no panic.
    let _ = agreements;
}

/// Random range ICs over the same relations, as standardize-apart
/// subjects.
fn random_constraint_src(rng: &mut StdRng, n: usize) -> String {
    let (name, arity) = [("p", 2usize), ("q", 2), ("r", 3)][rng.gen_range(0usize..3)];
    let args: Vec<String> = (0..arity)
        .map(|j| VAR_NAMES[j % VAR_NAMES.len()].to_string())
        .collect();
    let head_var = &args[rng.gen_range(0usize..args.len())];
    let op = ["<", "<=", ">", ">="][rng.gen_range(0usize..4)];
    let k = rng.gen_range(0i64..10);
    format!(
        "ic T{n}: {head_var} {op} {k} <- {name}({}).",
        args.join(", ")
    )
}

#[test]
fn standardize_apart_never_captures_query_vars() {
    let mut rng = StdRng::seed_from_u64(0xC33C);
    for n in 0..PAIRS {
        let ic = parse_constraint(&random_constraint_src(&mut rng, n)).expect("valid ic");
        // A used set that deliberately overlaps the constraint's own
        // variables plus some extras.
        let mut used: BTreeSet<Var> = ic.vars().into_iter().collect();
        for i in 0..rng.gen_range(0usize..4) {
            used.insert(Var::new(format!("U{i}")));
            used.insert(Var::new(format!("{}_1", VAR_NAMES[i % VAR_NAMES.len()])));
        }
        let apart = standardize_apart(&ic, &used);
        for v in apart.vars() {
            assert!(
                !used.contains(&v),
                "constraint {n}: standardize_apart captured {v}\n  ic: {ic}\n  out: {apart}"
            );
        }

        // The residue-level fast path must uphold the same guarantee.
        let rs = ResidueSet::compile(vec![ic.clone()]);
        for pred in [PredSym::new("p"), PredSym::new("q"), PredSym::new("r")] {
            for r in rs.residues_for(&pred) {
                let fresh = standardize_residue_apart(r, &used);
                for v in &fresh.vars {
                    assert!(
                        !used.contains(v),
                        "constraint {n}: standardize_residue_apart left {v} captured"
                    );
                }
            }
        }
    }
}
