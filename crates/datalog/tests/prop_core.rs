//! In-crate property tests for the first-order machinery: substitution
//! algebra, unification (MGU laws), θ-subsumption, and chase soundness
//! against the evaluation engine.

use proptest::prelude::*;
use sqo_datalog::chase::{group_removal_sound, ChaseBudget, ChaseContext};
use sqo_datalog::eval::answer_query;
use sqo_datalog::program::EdbDatabase;
use sqo_datalog::subsume::body_subsumes;
use sqo_datalog::unify::{match_atoms, mgu};
use sqo_datalog::{Atom, Const, ConstraintSet, Literal, PredSym, Query, Subst, Term, Var};
use std::collections::{BTreeMap, BTreeSet};

fn small_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => (0usize..4).prop_map(|i| Term::var(["X", "Y", "Z", "W"][i])),
        2 => (0i64..4).prop_map(Term::int),
        1 => (0u64..3).prop_map(Term::oid),
    ]
}

fn small_atom() -> impl Strategy<Value = Atom> {
    (
        (0usize..3).prop_map(|i| ["p", "q", "r"][i].to_string()),
        prop::collection::vec(small_term(), 1..3),
    )
        .prop_map(|(p, args)| Atom::new(p, args))
}

/// Atoms over a disjoint variable namespace (`P0`..`P3`) — matching
/// requires pattern and target variables to be standardized apart.
fn pattern_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => (0usize..4).prop_map(|i| Term::var(["P0", "P1", "P2", "P3"][i])),
        2 => (0i64..4).prop_map(Term::int),
        1 => (0u64..3).prop_map(Term::oid),
    ]
}

fn pattern_atom() -> impl Strategy<Value = Atom> {
    (
        (0usize..3).prop_map(|i| ["p", "q", "r"][i].to_string()),
        prop::collection::vec(pattern_term(), 1..3),
    )
        .prop_map(|(p, args)| Atom::new(p, args))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// An MGU really unifies, and is idempotent.
    #[test]
    fn mgu_unifies_and_is_idempotent(a in small_atom(), b in small_atom()) {
        if let Some(s) = mgu(&a, &b) {
            let ua = s.apply_atom(&a);
            let ub = s.apply_atom(&b);
            prop_assert_eq!(&ua, &ub, "not a unifier: {}", s);
            // Idempotence: applying twice changes nothing.
            prop_assert_eq!(s.apply_atom(&ua), ua);
        }
    }

    /// If atoms unify, any common ground instance is an instance of the
    /// MGU's result (most-generality, witnessed on sampled groundings).
    #[test]
    fn mgu_most_general_on_ground_witnesses(
        a in small_atom(),
        b in small_atom(),
        assign in prop::collection::vec(0i64..4, 4),
    ) {
        // Ground both atoms with the same assignment; if the groundings
        // coincide, the MGU must exist and match the grounding.
        let mut ground = Subst::new();
        for (i, name) in ["X", "Y", "Z", "W"].iter().enumerate() {
            ground.bind(Var::new(*name), Term::int(assign[i]));
        }
        let ga = ground.apply_atom(&a);
        let gb = ground.apply_atom(&b);
        if ga == gb {
            let s = mgu(&a, &b);
            prop_assert!(s.is_some(), "common instance exists but no MGU: {a} vs {b}");
            // The grounding factors through the MGU.
            let s = s.unwrap();
            let via = ground.apply_atom(&s.apply_atom(&a));
            prop_assert_eq!(via, ga);
        }
    }

    /// One-way matching: a successful match instantiates the pattern to
    /// the target exactly, and never binds target variables. Pattern
    /// variables are standardized apart, matching the documented
    /// precondition (all optimizer call sites rename first).
    #[test]
    fn matching_instantiates_pattern_only(pat in pattern_atom(), tgt in small_atom()) {
        let mut s = Subst::new();
        if match_atoms(&pat, &tgt, &mut s) {
            prop_assert_eq!(s.apply_atom(&pat), tgt.clone());
            // No target variable is in the substitution's domain unless it
            // is also a pattern variable.
            let pat_vars: BTreeSet<&Var> = pat.vars().collect();
            for v in tgt.vars() {
                if !pat_vars.contains(v) {
                    prop_assert!(s.lookup(v).is_none(), "bound target var {v}");
                }
            }
        }
    }

    /// θ-subsumption: a standardized-apart renaming of a body subsumes
    /// the original, and subsumption is stable under extending the
    /// target.
    #[test]
    fn subsumption_reflexive_and_monotone(
        body in prop::collection::vec(small_atom().prop_map(Literal::Pos), 1..4),
        extra in small_atom().prop_map(Literal::Pos),
    ) {
        // Rename the pattern side apart (the documented precondition).
        let mut rename = Subst::new();
        for name in ["X", "Y", "Z", "W"] {
            rename.bind(Var::new(name), Term::var(format!("P_{name}")));
        }
        let pattern: Vec<Literal> = body.iter().map(|l| rename.apply_literal(l)).collect();
        prop_assert!(body_subsumes(&pattern, &body));
        let mut bigger = body.clone();
        bigger.push(extra);
        prop_assert!(body_subsumes(&pattern, &bigger));
    }

    /// Substitution composition law: (s1 ∘ s2)(t) = s2(s1(t)).
    #[test]
    fn composition_law(
        t in small_term(),
        bind1 in (0usize..4, 0i64..4),
        bind2 in (0usize..4, 0i64..4),
    ) {
        let names = ["X", "Y", "Z", "W"];
        let mut s1 = Subst::new();
        s1.bind(Var::new(names[bind1.0]), Term::int(bind1.1));
        let mut s2 = Subst::new();
        s2.bind(Var::new(names[bind2.0]), Term::int(bind2.1));
        let composed = s1.compose(&s2);
        prop_assert_eq!(
            composed.apply_term(&t),
            s2.apply_term(&s1.apply_term(&t))
        );
    }
}

// Chase-based removal soundness checked against the evaluation engine:
// if the chase approves removing an atom, the reduced query returns the
// same answers on a database closed under the (inclusion) dependency.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn approved_removals_preserve_answers(
        edges in prop::collection::vec((0u64..8, 0u64..8), 1..12),
    ) {
        use sqo_datalog::clause::{Constraint, ConstraintHead};
        // Dependency: student(X) <- takes(X, Y)   (OID identification).
        let ic = Constraint::new(
            ConstraintHead::Atom(Atom::new("student", vec![Term::var("X")])),
            vec![Literal::pos("takes", vec![Term::var("X"), Term::var("Y")])],
        );
        // Database closed under the dependency.
        let mut db = EdbDatabase::new();
        for (f, t) in &edges {
            db.insert(PredSym::new("takes"), vec![Const::Oid(*f), Const::Oid(*t)]).unwrap();
            db.insert(PredSym::new("student"), vec![Const::Oid(*f)]).unwrap();
        }
        let q = Query::new(
            "q",
            vec![Term::var("X"), Term::var("Y")],
            vec![
                Literal::pos("student", vec![Term::var("X")]),
                Literal::pos("takes", vec![Term::var("X"), Term::var("Y")]),
            ],
        );
        let ctx = ChaseContext::from_constraints(&[ic], vec![], BTreeMap::new());
        let solver = ConstraintSet::new();
        let kept = vec![Literal::pos("takes", vec![Term::var("X"), Term::var("Y")])];
        let ok = group_removal_sound(
            &kept,
            &[Atom::new("student", vec![Term::var("X")])],
            &q.projection.iter().filter_map(Term::as_var).cloned().collect(),
            &ctx,
            &solver,
            ChaseBudget::default(),
        );
        prop_assert!(ok, "removal should be approved under the dependency");
        let reduced = Query::new("q", q.projection.clone(), kept);
        let (mut full, _) = answer_query(&db, &q).unwrap();
        let (mut red, _) = answer_query(&db, &reduced).unwrap();
        full.sort();
        red.sort();
        prop_assert_eq!(full, red);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Interner round-trip: `intern → as_str → intern` is the identity,
    /// and symbol equality/ordering mirror string equality/ordering
    /// (symbol order is observable through canonical forms and the
    /// `BTreeMap<Var, _>` substitution iteration order).
    #[test]
    fn interner_round_trip(a in "[a-zA-Z0-9_]{0,12}", b in "[a-zA-Z0-9_]{0,12}") {
        use sqo_datalog::intern::Sym;
        let sa = Sym::intern(&a);
        let sb = Sym::intern(&b);
        prop_assert_eq!(sa.as_str(), a.as_str());
        prop_assert_eq!(sb.as_str(), b.as_str());
        prop_assert_eq!(Sym::intern(sa.as_str()), sa);
        prop_assert_eq!(sa == sb, a == b);
        prop_assert_eq!(sa.cmp(&sb), a.cmp(&b));
    }

    /// Interning through the typed wrappers agrees with raw interning:
    /// a `Var` and a `PredSym` built from the same text resolve to the
    /// same underlying symbol text.
    #[test]
    fn interner_typed_wrappers_round_trip(name in "[a-z][a-zA-Z0-9_]{0,10}") {
        let v = Var::new(name.clone());
        let p = PredSym::new(name.clone());
        prop_assert_eq!(v.name(), name.as_str());
        prop_assert_eq!(p.name(), name.as_str());
        prop_assert_eq!(Var::new(v.name()), v);
    }
}
