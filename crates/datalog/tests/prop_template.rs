//! Property tests for the parameter-normalized canonical template
//! ([`Query::canonical_template`]) backing the semantic-plan cache.
//!
//! The contract under test: two queries share a template fingerprint iff
//! they are identical up to the constants of their var-vs-const
//! comparisons (the *lifted* parameters); and binding a parameter vector
//! back through the slots reproduces a query whose [`canonical_hash`]
//! matches the query those parameters came from.
//!
//! [`canonical_hash`]: Query::canonical_hash

use proptest::prelude::*;
use sqo_datalog::{CmpOp, Literal, Query, Term};

fn var_term() -> impl Strategy<Value = Term> {
    (0usize..4).prop_map(|i| Term::var(["X", "Y", "Z", "W"][i]))
}

fn small_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => var_term(),
        1 => (0i64..4).prop_map(Term::int),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
    ]
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        3 => (
            (0usize..3).prop_map(|i| ["p", "q", "r"][i].to_string()),
            prop::collection::vec(small_term(), 1..3),
        )
            .prop_map(|(p, args)| Literal::pos(p, args)),
        // Liftable comparisons: var vs const, in either orientation.
        3 => (var_term(), cmp_op(), 0i64..8, any::<bool>()).prop_map(|(v, op, k, flipped)| {
            if flipped {
                Literal::cmp(Term::int(k), op, v)
            } else {
                Literal::cmp(v, op, Term::int(k))
            }
        }),
        // Non-liftable comparisons: ground or var-vs-var.
        1 => (cmp_op(), 0i64..4, 0i64..4).prop_map(|(op, a, b)| {
            Literal::cmp(Term::int(a), op, Term::int(b))
        }),
        1 => (var_term(), cmp_op(), var_term()).prop_map(|(a, op, b)| Literal::cmp(a, op, b)),
    ]
}

fn query() -> impl Strategy<Value = Query> {
    (prop::collection::vec(literal(), 1..5), 0usize..4)
        .prop_map(|(body, p)| Query::new("q", vec![Term::var(["X", "Y", "Z", "W"][p])], body))
}

/// `q` with every lifted parameter shifted by `delta` (slot-wise).
fn shift_params(q: &Query, delta: i64) -> Query {
    let t = q.canonical_template();
    let shifted: Vec<_> = t
        .params
        .iter()
        .map(|c| match c {
            sqo_datalog::Const::Int(v) => sqo_datalog::Const::Int(v + delta),
            other => *other,
        })
        .collect();
    q.with_params(&t.slots, &shifted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Binding a template's own parameters back into its slots is the
    /// identity — the slots really address the lifted constants.
    #[test]
    fn rebinding_own_params_is_identity(q in query()) {
        let t = q.canonical_template();
        prop_assert_eq!(t.params.len(), t.slots.len());
        prop_assert_eq!(q.with_params(&t.slots, &t.params), q);
    }

    /// Changing only the lifted constants never changes the fingerprint,
    /// the slot list, or the canonical variable order.
    #[test]
    fn lifted_constants_do_not_affect_fingerprint(q in query(), delta in 1i64..50) {
        let t = q.canonical_template();
        let t2 = shift_params(&q, delta).canonical_template();
        prop_assert_eq!(t.hash, t2.hash);
        prop_assert_eq!(t.slots, t2.slots);
        prop_assert_eq!(t.var_order, t2.var_order);
    }

    /// The cache's transfer step is faithful: whenever two queries share
    /// a fingerprint, rebinding one side's parameters into the other's
    /// slots reproduces the first query's rename-independent identity
    /// (`canonical_hash`). This is exactly how a cached representative
    /// is retargeted onto a new request.
    #[test]
    fn equal_fingerprints_agree_up_to_params(q1 in query(), q2 in query()) {
        let t1 = q1.canonical_template();
        let t2 = q2.canonical_template();
        if t1.hash == t2.hash {
            prop_assert_eq!(t1.params.len(), t2.params.len());
            let transferred = q2.with_params(&t2.slots, &t1.params);
            prop_assert_eq!(
                transferred.canonical_hash(),
                q1.canonical_hash(),
                "template-equal queries must coincide once parameters are rebound:\n  {}\n  {}",
                q1,
                q2
            );
        }
    }

    /// Distinct parameter vectors leave the fingerprint equal while the
    /// concrete queries differ — the cache key really is a template, not
    /// the query itself.
    #[test]
    fn templates_abstract_over_params(q in query(), delta in 1i64..50) {
        let t = q.canonical_template();
        if !t.params.is_empty() {
            let shifted = shift_params(&q, delta);
            prop_assert_eq!(t.hash, shifted.canonical_template().hash);
            // Shifting params must change the concrete query.
            prop_assert_ne!(shifted.canonical_hash(), q.canonical_hash());
        }
    }
}
