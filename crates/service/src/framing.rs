//! Incremental JSON-lines framing for the event-loop server.
//!
//! A connection delivers bytes in arbitrary chunks — a frame boundary
//! (`\n`) can land anywhere, including mid-UTF-8-sequence or mid-escape.
//! [`LineFramer`] buffers exactly the unterminated tail and yields each
//! complete line as it closes, so the byte-chunking of the transport is
//! invisible to the protocol layer: any split of a request stream
//! reassembles to the same frame sequence as whole-frame delivery
//! (pinned by the `framing_prop` proptest suite).
//!
//! Memory is bounded: a line that grows past `max_frame` bytes without a
//! terminator is a protocol violation ([`FrameError::Oversized`]) — the
//! caller reports it and drops the connection, so a slow-loris peer
//! dribbling an endless frame can never hold more than `max_frame`
//! buffered bytes.

/// Why the framer rejected its input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// A single line exceeded the configured maximum frame size.
    Oversized {
        /// The configured limit the line overran.
        limit: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { limit } => {
                write!(f, "frame exceeds the {limit}-byte limit")
            }
        }
    }
}

/// An incremental splitter of a byte stream into `\n`-terminated frames.
///
/// Feed chunks with [`LineFramer::push`], then drain complete frames
/// with [`LineFramer::next_frame`]. Bytes after the last terminator stay
/// buffered (the *tail*, bounded by `max_frame`) until a later chunk
/// completes them.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    /// Start of the first undelivered frame within `buf`.
    start: usize,
    /// Length of the unterminated tail (bytes after the last `\n` seen).
    tail_len: usize,
    max_frame: usize,
    /// Set once a frame overruns; the framer yields nothing afterwards.
    poisoned: bool,
}

impl LineFramer {
    /// A framer holding at most `max_frame` bytes in any single line.
    pub fn new(max_frame: usize) -> LineFramer {
        LineFramer {
            buf: Vec::new(),
            start: 0,
            tail_len: 0,
            max_frame: max_frame.max(1),
            poisoned: false,
        }
    }

    /// Appends a chunk of received bytes.
    ///
    /// Returns [`FrameError::Oversized`] when the current line (the
    /// unterminated tail including this chunk) exceeds `max_frame`; the
    /// connection should be torn down — subsequent calls keep failing
    /// and buffer nothing further.
    pub fn push(&mut self, chunk: &[u8]) -> Result<(), FrameError> {
        if self.poisoned {
            return Err(FrameError::Oversized {
                limit: self.max_frame,
            });
        }
        match chunk.iter().rposition(|&b| b == b'\n') {
            Some(last) => self.tail_len = chunk.len() - (last + 1),
            None => self.tail_len += chunk.len(),
        }
        if self.tail_len > self.max_frame {
            self.poisoned = true;
            self.buf.clear();
            self.start = 0;
            return Err(FrameError::Oversized {
                limit: self.max_frame,
            });
        }
        self.buf.extend_from_slice(chunk);
        Ok(())
    }

    /// Pops the next complete frame (without its terminator), or `None`
    /// when no full line is buffered yet.
    pub fn next_frame(&mut self) -> Option<Vec<u8>> {
        if self.poisoned {
            return None;
        }
        let rel = self.buf[self.start..].iter().position(|&b| b == b'\n')?;
        let end = self.start + rel;
        let frame = self.buf[self.start..end].to_vec();
        self.start = end + 1;
        // Compact once the delivered prefix dominates the buffer, so a
        // long-lived pipelined connection doesn't grow without bound.
        if self.start > 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Some(frame)
    }

    /// Bytes currently buffered (undelivered frames plus the tail).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(f: &mut LineFramer) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(fr) = f.next_frame() {
            out.push(String::from_utf8(fr).unwrap());
        }
        out
    }

    #[test]
    fn whole_frames_pass_through() {
        let mut f = LineFramer::new(1024);
        f.push(b"{\"op\":\"ping\"}\n{\"op\":\"metrics\"}\n")
            .unwrap();
        assert_eq!(
            frames(&mut f),
            vec!["{\"op\":\"ping\"}", "{\"op\":\"metrics\"}"]
        );
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn split_anywhere_reassembles() {
        let stream = b"{\"op\":\"ping\"}\n{\"oql\":\"\xc3\xa9\"}\n";
        for cut in 0..stream.len() {
            let mut f = LineFramer::new(1024);
            f.push(&stream[..cut]).unwrap();
            let mut got = frames(&mut f);
            f.push(&stream[cut..]).unwrap();
            got.extend(frames(&mut f));
            assert_eq!(
                got,
                vec!["{\"op\":\"ping\"}", "{\"oql\":\"\u{e9}\"}"],
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn partial_tail_stays_buffered() {
        let mut f = LineFramer::new(1024);
        f.push(b"{\"op\":\"pi").unwrap();
        assert_eq!(f.next_frame(), None);
        assert_eq!(f.buffered(), 9);
        f.push(b"ng\"}\n").unwrap();
        assert_eq!(frames(&mut f), vec!["{\"op\":\"ping\"}"]);
    }

    #[test]
    fn oversized_line_poisons() {
        let mut f = LineFramer::new(8);
        f.push(b"ok\n").unwrap();
        assert_eq!(frames(&mut f), vec!["ok"]);
        assert!(f.push(b"123456789").is_err(), "nine bytes, limit eight");
        assert_eq!(f.next_frame(), None);
        assert!(f.push(b"\n").is_err(), "poisoned framers stay failed");
        assert_eq!(f.buffered(), 0, "poisoning releases the buffer");
    }

    #[test]
    fn oversized_tail_across_pushes() {
        let mut f = LineFramer::new(8);
        f.push(b"12345").unwrap();
        f.push(b"678").unwrap();
        assert!(f.push(b"9").is_err());
    }

    #[test]
    fn newline_resets_the_tail_budget() {
        let mut f = LineFramer::new(8);
        // Each line is small; the stream is much longer than the limit.
        for _ in 0..100 {
            f.push(b"1234567\n").unwrap();
        }
        assert_eq!(frames(&mut f).len(), 100);
    }

    #[test]
    fn compaction_preserves_pending_frames() {
        let mut f = LineFramer::new(64);
        let line = b"abcdefghijklmnopqrstuvwxyz012345\n"; // 33 bytes
        for _ in 0..300 {
            f.push(line).unwrap();
        }
        let got = frames(&mut f);
        assert_eq!(got.len(), 300);
        assert!(got.iter().all(|l| l == "abcdefghijklmnopqrstuvwxyz012345"));
        assert_eq!(f.buffered(), 0);
    }
}
