//! The slow-query log: a bounded ring buffer of explain records.
//!
//! Requests whose service time exceeds the configured threshold append
//! one JSON object — trace id, canonical template hash, verdict, cache
//! outcome, chosen plan cost (when the session has a bound object base),
//! total and per-stage durations, and the full `explain_json` report —
//! to an in-memory ring buffer. The newest `capacity` entries are
//! retrievable over the wire with `{"op":"slowlog"}`, and each entry is
//! also appended as a JSON line to `--slowlog-path` when configured.

use sqo_obs as obs;
use std::collections::VecDeque;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::sync::Mutex;

/// Bounded ring buffer of slow-query JSON entries (newest kept).
pub struct SlowLog {
    capacity: usize,
    threshold_ns: u64,
    entries: Mutex<VecDeque<String>>,
    sink: Mutex<Option<File>>,
}

/// Everything a slow-query entry records about one request.
pub struct SlowEntry<'a> {
    /// Request trace id (`session:generation:seq`).
    pub trace_id: &'a str,
    /// Session name.
    pub session: &'a str,
    /// Canonical template hash of the translated query (hex), the key
    /// the plan cache groups requests by.
    pub template_hash: u64,
    /// `"contradiction"` or `"equivalents"`.
    pub verdict: &'a str,
    /// Plan-cache outcome label (`hit` / `rebind` / `miss`).
    pub cache: &'a str,
    /// Cost-model estimate of the chosen plan, when the session has a
    /// bound object base; `None` otherwise.
    pub plan_cost: Option<f64>,
    /// End-to-end service time (admission wait excluded).
    pub elapsed_ns: u64,
    /// The request's span events (per-stage durations), when traced.
    pub trace: Option<&'a obs::Trace>,
    /// The full machine-readable report, already compacted.
    pub explain: &'a str,
}

impl SlowLog {
    /// A log holding at most `capacity` entries for requests slower than
    /// `threshold_ms`, optionally appending each entry to `path`.
    pub fn new(capacity: usize, threshold_ms: u64, path: Option<&str>) -> std::io::Result<SlowLog> {
        let sink = match path {
            Some(p) => Some(OpenOptions::new().create(true).append(true).open(p)?),
            None => None,
        };
        Ok(SlowLog {
            capacity: capacity.max(1),
            threshold_ns: threshold_ms.saturating_mul(1_000_000),
            entries: Mutex::new(VecDeque::new()),
            sink: Mutex::new(sink),
        })
    }

    /// The slow threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Whether a request with this service time qualifies as slow.
    pub fn is_slow(&self, elapsed_ns: u64) -> bool {
        elapsed_ns >= self.threshold_ns
    }

    /// Appends one entry (assumes the caller already checked
    /// [`SlowLog::is_slow`]), evicting the oldest past capacity.
    pub fn record(&self, e: &SlowEntry<'_>) {
        obs::bump(obs::Counter::ServeSlowQueries);
        let line = render_entry(e);
        if let Ok(mut sink) = self.sink.lock() {
            if let Some(f) = sink.as_mut() {
                let _ = f.write_all(line.as_bytes());
                let _ = f.write_all(b"\n");
            }
        }
        let mut entries = self.entries.lock().unwrap_or_else(|e| e.into_inner());
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(line);
    }

    /// The retained entries, oldest first (each a JSON object string).
    pub fn entries(&self) -> Vec<String> {
        self.entries
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }
}

fn render_entry(e: &SlowEntry<'_>) -> String {
    let plan_cost = match e.plan_cost {
        Some(c) => format!("{c:.1}"),
        None => "null".to_string(),
    };
    let mut stages = String::from("{");
    if let Some(trace) = e.trace {
        let mut first = true;
        for ev in &trace.events {
            if !first {
                stages.push(',');
            }
            first = false;
            stages.push_str(&format!("{}:{}", obs::json_string(ev.name), ev.dur_ns));
        }
    }
    stages.push('}');
    format!(
        concat!(
            r#"{{"trace_id":{},"session":{},"template":"{:016x}","verdict":{},"#,
            r#""cache":{},"plan_cost":{},"elapsed_ns":{},"stages":{},"explain":{}}}"#
        ),
        obs::json_string(e.trace_id),
        obs::json_string(e.session),
        e.template_hash,
        obs::json_string(e.verdict),
        obs::json_string(e.cache),
        plan_cost,
        e.elapsed_ns,
        stages,
        e.explain
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry<'a>(trace_id: &'a str, explain: &'a str) -> SlowEntry<'a> {
        SlowEntry {
            trace_id,
            session: "default",
            template_hash: 0xfeed,
            verdict: "equivalents",
            cache: "miss",
            plan_cost: Some(12.5),
            elapsed_ns: 7_000_000,
            trace: None,
            explain,
        }
    }

    #[test]
    fn ring_buffer_keeps_newest_entries() {
        let log = SlowLog::new(2, 1, None).unwrap();
        assert!(log.is_slow(1_000_000));
        assert!(!log.is_slow(999_999));
        for id in ["a", "b", "c"] {
            log.record(&entry(id, "{}"));
        }
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries[0].contains(r#""trace_id":"b""#));
        assert!(entries[1].contains(r#""trace_id":"c""#));
        assert!(entries[1].contains(r#""template":"000000000000feed""#));
        assert!(entries[1].contains(r#""plan_cost":12.5"#));
    }

    #[test]
    fn sink_appends_json_lines() {
        let dir = std::env::temp_dir().join(format!("sqo-slowlog-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("slow.jsonl");
        let path_str = path.to_str().unwrap();
        {
            let log = SlowLog::new(4, 1, Some(path_str)).unwrap();
            log.record(&entry("x", r#"{"verdict":"equivalents"}"#));
        }
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains(r#""trace_id":"x""#));
        let _ = std::fs::remove_file(&path);
    }
}
