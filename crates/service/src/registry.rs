//! The session registry: prepared schemas shared across workers.
//!
//! A *session* is a named, prepared knowledge base — ODL parse, Step-1
//! translation and residue compilation are done once, at prepare or
//! reload time, and the resulting [`PreparedOptimizer`] is shared behind
//! an `Arc` so any number of workers can optimize concurrently with
//! `&self`. Each session owns one [`PlanCache`]; reloading the
//! constraint set rebuilds the optimizer at the next *generation* and
//! invalidates the cache, so stale plans are never served (the cache
//! double-checks the generation besides).

use crate::ServeError;
use sqo_core::{PlanCache, PreparedOptimizer, SemanticOptimizer};
use sqo_datalog::parser::{parse_program, Statement};
use sqo_objdb::{ObjectDb, UniversityConfig};
use sqo_obs as obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// How a session's base schema is constructed (kept so reloads can
/// rebuild from scratch).
#[derive(Debug, Clone)]
pub enum SessionSpec {
    /// The built-in university schema of the paper's Figure 1.
    University,
    /// An ODL schema given as source text.
    Odl(String),
}

/// A named prepared knowledge base plus its plan cache.
pub struct Session {
    name: String,
    spec: SessionSpec,
    ic_text: Mutex<Option<String>>,
    prep: RwLock<Arc<PreparedOptimizer>>,
    cache: PlanCache,
    /// Per-session request sequence, the tail of each trace id.
    trace_seq: AtomicU64,
    /// Optional bound object base. `ObjectDb` keeps interior caches in
    /// `RefCell`s, so execution serializes on this mutex; optimization
    /// (the expensive part) stays concurrent.
    data: RwLock<Option<Arc<Mutex<ObjectDb>>>>,
}

impl Session {
    fn build(
        spec: &SessionSpec,
        ic_text: Option<&str>,
        generation: u64,
    ) -> Result<PreparedOptimizer, ServeError> {
        let mut opt = match spec {
            SessionSpec::University => SemanticOptimizer::university(),
            SessionSpec::Odl(src) => SemanticOptimizer::from_odl(src)
                .map_err(|e| ServeError::BadRequest(e.to_string()))?,
        };
        if let Some(src) = ic_text {
            let statements =
                parse_program(src).map_err(|e| ServeError::BadRequest(e.to_string()))?;
            for st in statements {
                match st {
                    Statement::Constraint(ic) => opt.add_constraint(ic),
                    Statement::Rule(rule) => opt.add_view(rule),
                    other => {
                        return Err(ServeError::BadRequest(format!(
                            "unsupported statement in constraint text: {other:?}"
                        )))
                    }
                }
            }
        }
        Ok(opt.prepare().with_generation(generation))
    }

    /// The session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The current prepared optimizer (cheap `Arc` clone).
    pub fn prepared(&self) -> Arc<PreparedOptimizer> {
        self.prep.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// This session's plan cache.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The session's bound object base, when data was attached.
    pub fn data(&self) -> Option<Arc<Mutex<ObjectDb>>> {
        self.data.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Binds an object base to this session so `query` requests can
    /// execute chosen plans, and `create`/`link`/`persist` requests can
    /// mutate durable state. The database may be in-memory or opened
    /// from a store directory (see `ObjectDb::open`).
    pub fn attach_db(&self, db: ObjectDb) {
        *self.data.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(Mutex::new(db)));
    }

    /// Binds the deterministic built-in university object base (the
    /// Figure 1 instance the benchmarks use) so `query` requests can
    /// execute chosen plans and report plan costs. Only meaningful for
    /// [`SessionSpec::University`] sessions, whose schema the generator
    /// targets.
    pub fn attach_university_data(&self) -> Result<(), ServeError> {
        if !matches!(self.spec, SessionSpec::University) {
            return Err(ServeError::BadRequest(
                "\"data\":true requires a university session".into(),
            ));
        }
        let built = UniversityConfig::default()
            .build()
            .map_err(|e| ServeError::BadRequest(e.to_string()))?;
        self.attach_db(built.db);
        Ok(())
    }

    /// The next deterministic trace id for this session:
    /// `<session>:<generation>:<sequence>`. The sequence is process-wide
    /// monotonic per session, so ids are unique and — given a serialized
    /// request order, as in tests — fully predictable.
    pub fn next_trace_id(&self) -> String {
        let seq = self.trace_seq.fetch_add(1, Ordering::Relaxed);
        format!("{}:{}:{}", self.name, self.prepared().generation(), seq)
    }

    /// Replaces the constraint/view text, rebuilds the prepared
    /// optimizer at the next generation, and invalidates the plan
    /// cache. Returns the new generation.
    pub fn reload_ic(&self, ic: &str) -> Result<u64, ServeError> {
        let generation = self.prepared().generation() + 1;
        let fresh = Session::build(&self.spec, Some(ic), generation)?;
        *self.ic_text.lock().unwrap_or_else(|e| e.into_inner()) = Some(ic.to_string());
        *self.prep.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(fresh);
        self.cache.invalidate();
        obs::add(obs::Counter::ServiceSessionsPrepared, 1);
        Ok(generation)
    }
}

/// A concurrent map of named [`Session`]s.
#[derive(Default)]
pub struct SessionRegistry {
    sessions: RwLock<HashMap<String, Arc<Session>>>,
}

impl SessionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        SessionRegistry::default()
    }

    /// Prepares (or replaces) the session `name` from `spec` plus
    /// optional constraint/view source text. Returns the session's
    /// starting generation (0 for new sessions, previous + 1 when a
    /// session of that name is replaced).
    pub fn prepare(
        &self,
        name: &str,
        spec: SessionSpec,
        ic_text: Option<&str>,
    ) -> Result<u64, ServeError> {
        let generation = self
            .get(name)
            .map(|s| s.prepared().generation() + 1)
            .unwrap_or(0);
        let prep = Session::build(&spec, ic_text, generation)?;
        let session = Arc::new(Session {
            name: name.to_string(),
            spec,
            ic_text: Mutex::new(ic_text.map(str::to_string)),
            prep: RwLock::new(Arc::new(prep)),
            cache: PlanCache::new(),
            trace_seq: AtomicU64::new(0),
            data: RwLock::new(None),
        });
        self.sessions
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), session);
        obs::add(obs::Counter::ServiceSessionsPrepared, 1);
        Ok(generation)
    }

    /// Fetches a session by name.
    pub fn get(&self, name: &str) -> Option<Arc<Session>> {
        self.sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Session names in sorted order (for the metrics reply).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .sessions
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_reload_and_generations() {
        let reg = SessionRegistry::new();
        let g0 = reg
            .prepare(
                "uni",
                SessionSpec::University,
                Some("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad)."),
            )
            .unwrap();
        assert_eq!(g0, 0);
        let s = reg.get("uni").unwrap();
        assert_eq!(s.prepared().generation(), 0);
        let g1 = s
            .reload_ic("ic IC4: Age >= 40 <- faculty(X, N, Age, S, R, Ad).")
            .unwrap();
        assert_eq!(g1, 1);
        assert_eq!(s.prepared().generation(), 1);
        assert!(s.cache().is_empty());
        // Re-preparing under the same name keeps advancing generations.
        let g2 = reg.prepare("uni", SessionSpec::University, None).unwrap();
        assert_eq!(g2, 2);
    }

    #[test]
    fn trace_ids_are_deterministic_per_session() {
        let reg = SessionRegistry::new();
        reg.prepare("t", SessionSpec::University, None).unwrap();
        let s = reg.get("t").unwrap();
        assert_eq!(s.next_trace_id(), "t:0:0");
        assert_eq!(s.next_trace_id(), "t:0:1");
        s.reload_ic("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
            .unwrap();
        // The generation component tracks reloads; the sequence keeps
        // counting so ids never repeat.
        assert_eq!(s.next_trace_id(), "t:1:2");
    }

    #[test]
    fn bad_ic_text_is_rejected() {
        let reg = SessionRegistry::new();
        let err = reg
            .prepare("u", SessionSpec::University, Some("this is not datalog"))
            .unwrap_err();
        assert!(matches!(err, ServeError::BadRequest(_)));
        assert!(reg.get("u").is_none());
    }
}
