//! The readiness-driven serving mode: one loop thread multiplexing
//! every connection over non-blocking sockets.
//!
//! Connections are state machines, not threads. Each one owns an
//! incremental [`LineFramer`](crate::framing::LineFramer) for reads, an
//! in-order response queue (*slots*), and a pending write buffer. A
//! single wake-up drains **all** complete frames a connection has
//! buffered (pipelined batching), routes each through the same
//! [`route`](crate::server) table as the threaded mode, and queues the
//! responses strictly in request order — a later request answered early
//! (a cache hit behind a slow miss) waits in its slot until everything
//! ahead of it is on the wire.
//!
//! Division of labour: control ops (`ping`, `metrics`, `prepare`, …)
//! are answered inline on the loop thread; `query` work is submitted to
//! the same admission [`Pool`](crate::admission::Pool) as threaded mode
//! — shed and queue semantics are byte-for-byte identical — and the
//! worker hands the formatted response back through a completion queue,
//! waking the loop via a self-pipe. Deadlines are enforced by the loop:
//! the poll timeout is the nearest pending deadline, and an expired
//! slot is answered with `deadline_exceeded` (a late worker result for
//! an already-answered slot is dropped, mirroring the closed reply
//! channel of the threaded path).
//!
//! Nothing here blocks on a socket, so a slow-loris peer dribbling one
//! byte per minute costs one framer tail, never a worker thread, and a
//! fast client on the same server keeps its latency.

use crate::framing::LineFramer;
use crate::poll::{Event, Interest, Poller};
use crate::server::{self, Routed, Shared};
use crate::ServeError;
use sqo_obs as obs;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const LISTENER: u64 = 0;
const WAKER: u64 = 1;
const FIRST_CONN: u64 = 2;

/// A worker-completed query: which connection, which slot, what bytes.
type Completion = (u64, u64, String);

/// Wakes the loop from a worker thread by writing one byte into the
/// self-pipe. A full pipe means wake-ups are already pending, so a
/// `WouldBlock` is success.
#[derive(Clone)]
struct Waker(Arc<UnixStream>);

impl Waker {
    fn wake(&self) {
        let _ = (&*self.0).write(&[1u8]);
    }
}

/// One response slot. Slots leave the queue front-first and only when
/// `Ready`, which is what guarantees in-order responses under
/// pipelining.
enum Slot {
    Ready(String),
    Pending { seq: u64, deadline: Instant },
}

struct Conn {
    stream: TcpStream,
    framer: LineFramer,
    slots: VecDeque<Slot>,
    write_buf: Vec<u8>,
    write_pos: usize,
    next_seq: u64,
    /// Stop reading and close once every queued response is flushed
    /// (protocol violation, invalid UTF-8, or shutdown).
    close_after_flush: bool,
    /// Whether the poller currently watches this socket for writability.
    wants_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, max_frame: usize) -> Conn {
        Conn {
            stream,
            framer: LineFramer::new(max_frame),
            slots: VecDeque::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            next_seq: 0,
            close_after_flush: false,
            wants_write: false,
        }
    }

    /// The nearest deadline among this connection's pending slots.
    fn next_deadline(&self) -> Option<Instant> {
        self.slots
            .iter()
            .filter_map(|s| match s {
                Slot::Pending { deadline, .. } => Some(*deadline),
                Slot::Ready(_) => None,
            })
            .min()
    }
}

struct Loop {
    shared: Arc<Shared>,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_id: u64,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Waker,
    wake_rx: UnixStream,
    /// The connection whose `shutdown` response ends the loop once
    /// flushed.
    shutdown_conn: Option<u64>,
}

/// Runs the event loop until a `shutdown` request has been answered and
/// flushed (or the listener dies).
pub(crate) fn run(listener: TcpListener, shared: Arc<Shared>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let (wake_rx, wake_tx) = UnixStream::pair()?;
    wake_rx.set_nonblocking(true)?;
    wake_tx.set_nonblocking(true)?;
    let mut poller = Poller::new()?;
    poller.register(listener.as_raw_fd(), LISTENER, Interest::READ)?;
    poller.register(wake_rx.as_raw_fd(), WAKER, Interest::READ)?;
    let mut lp = Loop {
        shared,
        poller,
        conns: HashMap::new(),
        next_id: FIRST_CONN,
        completions: Arc::new(Mutex::new(Vec::new())),
        waker: Waker(Arc::new(wake_tx)),
        wake_rx,
        shutdown_conn: None,
    };
    lp.serve(&listener)
}

impl Loop {
    fn serve(&mut self, listener: &TcpListener) -> std::io::Result<()> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self
                .conns
                .values()
                .filter_map(Conn::next_deadline)
                .min()
                .map(|d| d.saturating_duration_since(Instant::now()));
            events.clear();
            self.poller.wait(&mut events, timeout)?;

            let mut dead: Vec<u64> = Vec::new();
            for &ev in &events {
                match ev.token {
                    LISTENER => self.accept_ready(listener),
                    WAKER => self.drain_waker(),
                    id => {
                        if self.conns.contains_key(&id) && !self.handle_conn_event(id, ev) {
                            dead.push(id);
                        }
                    }
                }
            }
            self.apply_completions();
            self.expire_deadlines();
            // A slot may have become `Ready` for any connection (via a
            // completion or an expiry), so give each a flush chance.
            let ids: Vec<u64> = self.conns.keys().copied().collect();
            for id in ids {
                if !self.flush_conn(id) {
                    dead.push(id);
                }
            }
            dead.sort_unstable();
            dead.dedup();
            let mut stop_now = false;
            for id in dead {
                self.close_conn(id);
                if self.shutdown_conn == Some(id) {
                    stop_now = true;
                }
            }
            // Counter bumps made on the loop thread (serve.requests,
            // shed, deadline_exceeded) become globally visible no later
            // than the responses that reported them.
            obs::flush_local();
            if stop_now {
                return Ok(());
            }
        }
    }

    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.stop.load(Ordering::Acquire) {
                        continue; // shutting down: accept-and-drop
                    }
                    // Same rationale as the threaded mode: tiny request
                    // and response lines lose whole delayed-ACK timers
                    // to Nagle.
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let id = self.next_id;
                    self.next_id += 1;
                    if self
                        .poller
                        .register(stream.as_raw_fd(), id, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns
                        .insert(id, Conn::new(stream, self.shared.max_frame_bytes));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: fully drained
            }
        }
    }

    /// Reads and processes everything a connection has for us. Returns
    /// `false` when the connection should be torn down now.
    fn handle_conn_event(&mut self, id: u64, ev: Event) -> bool {
        if ev.readable || ev.hangup {
            let conn = self.conns.get_mut(&id).expect("checked by caller");
            let mut buf = [0u8; 64 * 1024];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        // Peer closed. Anything unflushed has no reader
                        // worth waiting for; pending worker results are
                        // dropped on completion (the conn id is gone).
                        return false;
                    }
                    Ok(n) => {
                        if conn.close_after_flush {
                            continue; // discard: already closing
                        }
                        if conn.framer.push(&buf[..n]).is_err() {
                            let e = ServeError::BadRequest(format!(
                                "request line exceeds {} bytes",
                                self.shared.max_frame_bytes
                            ));
                            conn.slots
                                .push_back(Slot::Ready(server::error_response(&e)));
                            conn.close_after_flush = true;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
            self.process_frames(id);
        }
        true
    }

    /// Drains every complete frame the connection has buffered — the
    /// pipelined batch — and queues one response slot per request.
    fn process_frames(&mut self, id: u64) {
        loop {
            let conn = match self.conns.get_mut(&id) {
                Some(c) => c,
                None => return,
            };
            if conn.close_after_flush {
                return;
            }
            let frame = match conn.framer.next_frame() {
                Some(f) => f,
                None => return,
            };
            let line = match String::from_utf8(frame) {
                Ok(l) => l,
                Err(_) => {
                    let e = ServeError::BadRequest("request line is not valid UTF-8".into());
                    conn.slots
                        .push_back(Slot::Ready(server::error_response(&e)));
                    conn.close_after_flush = true;
                    return;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            // `route` can recurse into the registry/pool, so don't hold
            // a `conn` borrow across it.
            match server::route(&self.shared, &line) {
                Routed::Done(resp) => {
                    if let Some(c) = self.conns.get_mut(&id) {
                        c.slots.push_back(Slot::Ready(resp));
                    }
                }
                Routed::Shutdown(resp) => {
                    if let Some(c) = self.conns.get_mut(&id) {
                        c.slots.push_back(Slot::Ready(resp));
                        c.close_after_flush = true;
                    }
                    self.shutdown_conn = Some(id);
                    return;
                }
                Routed::Query(job) => {
                    let Some(c) = self.conns.get_mut(&id) else {
                        return;
                    };
                    let seq = c.next_seq;
                    c.next_seq += 1;
                    c.slots.push_back(Slot::Pending {
                        seq,
                        deadline: job.deadline,
                    });
                    let completions = Arc::clone(&self.completions);
                    let waker = self.waker.clone();
                    let admitted = server::submit_job(
                        &self.shared,
                        *job,
                        Box::new(move |resp| {
                            // Make the worker's counter bumps visible
                            // before the response can hit the wire.
                            obs::flush_local();
                            completions
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push((id, seq, resp));
                            waker.wake();
                        }),
                    );
                    if !admitted {
                        let c = self.conns.get_mut(&id).expect("just inserted");
                        *c.slots.back_mut().expect("just pushed") =
                            Slot::Ready(server::error_response(&ServeError::Overloaded));
                    }
                }
            }
        }
    }

    /// Files worker results into their slots. A completion whose slot
    /// is gone (connection closed) or already `Ready` (deadline beat
    /// the worker) is dropped, exactly as the threaded mode drops a
    /// send into a closed reply channel.
    fn apply_completions(&mut self) {
        let done: Vec<Completion> =
            std::mem::take(&mut *self.completions.lock().unwrap_or_else(|e| e.into_inner()));
        for (id, seq, resp) in done {
            let Some(conn) = self.conns.get_mut(&id) else {
                continue;
            };
            if let Some(slot) = conn
                .slots
                .iter_mut()
                .find(|s| matches!(s, Slot::Pending { seq: have, .. } if *have == seq))
            {
                *slot = Slot::Ready(resp);
            }
        }
    }

    /// Answers every expired pending slot with `deadline_exceeded`,
    /// matching the threaded mode's `recv_timeout` path (including the
    /// counter bump).
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        for conn in self.conns.values_mut() {
            for slot in conn.slots.iter_mut() {
                if let Slot::Pending { deadline, .. } = slot {
                    if *deadline <= now {
                        obs::add(obs::Counter::ServeDeadlineExceeded, 1);
                        *slot = Slot::Ready(server::error_response(&ServeError::DeadlineExceeded));
                    }
                }
            }
        }
    }

    /// Moves ready head slots onto the wire. Returns `false` when the
    /// connection is finished (flushed its goodbye, or the peer broke).
    fn flush_conn(&mut self, id: u64) -> bool {
        let Some(conn) = self.conns.get_mut(&id) else {
            return true;
        };
        loop {
            while matches!(conn.slots.front(), Some(Slot::Ready(_))) {
                if let Some(Slot::Ready(resp)) = conn.slots.pop_front() {
                    conn.write_buf.extend_from_slice(resp.as_bytes());
                    conn.write_buf.push(b'\n');
                }
            }
            if conn.write_pos == conn.write_buf.len() {
                conn.write_buf.clear();
                conn.write_pos = 0;
                if conn.close_after_flush && conn.slots.is_empty() {
                    return false;
                }
                break;
            }
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => conn.write_pos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        // Watch for writability only while bytes are stuck; waking on
        // an always-writable socket would spin the loop.
        let needs_write = conn.write_pos < conn.write_buf.len();
        if needs_write != conn.wants_write {
            let interest = if needs_write {
                Interest::READ_WRITE
            } else {
                Interest::READ
            };
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), id, interest)
                .is_ok()
            {
                let conn = self.conns.get_mut(&id).expect("still present");
                conn.wants_write = needs_write;
            }
        }
        true
    }

    fn close_conn(&mut self, id: u64) {
        if let Some(conn) = self.conns.remove(&id) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
    }
}
