//! A minimal JSON reader for the wire protocol.
//!
//! The workspace is dependency-free, so the service parses its own
//! requests. This is a strict-enough recursive-descent parser for the
//! protocol's needs (objects, arrays, strings with escapes, numbers,
//! booleans, null); it is not a general validating parser — e.g. it
//! accepts trailing garbage only after [`parse`] has consumed one value
//! and explicitly rejects it there.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses exactly one JSON value from `src` (surrounding whitespace
/// allowed, trailing content rejected).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

/// Removes insignificant whitespace from JSON text — used to embed the
/// (pretty-printed) explain report into a single-line wire response.
pub fn compact(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let mut in_str = false;
    let mut escaped = false;
    for c in src.chars() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
            out.push(c);
        } else if !c.is_ascii_whitespace() {
            out.push(c);
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed by the protocol.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one (possibly multi-byte) character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| {
            b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-'
        }) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_requests() {
        let v = parse(
            r#"{"op": "query", "oql": "select \"x\"", "timeout_ms": 250, "deep": [1, true, null]}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("query"));
        assert_eq!(v.get("oql").and_then(Json::as_str), Some("select \"x\""));
        assert_eq!(v.get("timeout_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(
            v.get("deep").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn compact_preserves_strings() {
        let src = "{\n  \"a b\": \"x \\\" y\",\n  \"n\": [1, 2]\n}";
        assert_eq!(compact(src), r#"{"a b":"x \" y","n":[1,2]}"#);
    }
}
