//! A minimal readiness-polling abstraction over raw OS primitives.
//!
//! The workspace is dependency-free, so this is the "tiny shim" layer:
//! on Linux a level-triggered **epoll** instance driven through the
//! C ABI that `std` already links (`epoll_create1`/`epoll_ctl`/
//! `epoll_wait`); on other Unixes a **poll(2)** set rebuilt per wait.
//! Both expose the same [`Poller`] surface: register a file descriptor
//! with a `u64` token and an interest set, wait for readiness events,
//! get `(token, readable, writable, hangup)` tuples back.
//!
//! Level-triggered semantics everywhere: an event keeps firing while the
//! condition holds, so the event loop may process a bounded amount per
//! wake-up (fairness across connections) and rely on being woken again
//! for the remainder.

use std::time::Duration;

/// What to watch a descriptor for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the descriptor is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest (a connection flushing a response).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor has bytes to read (or EOF to observe).
    pub readable: bool,
    /// The descriptor can accept writes.
    pub writable: bool,
    /// Error/hangup condition; the owner should read to observe it.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
pub use linux::Poller;

#[cfg(all(unix, not(target_os = "linux")))]
pub use posix::Poller;

/// Linux: one epoll instance for the lifetime of the poller.
#[cfg(target_os = "linux")]
mod linux {
    use super::{Event, Interest};
    use std::io;
    use std::os::raw::c_int;
    use std::time::Duration;

    // The kernel packs `struct epoll_event` on x86-64 only.
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.readable {
            m |= EPOLLIN;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// A level-triggered epoll instance.
    pub struct Poller {
        epfd: c_int,
        buf: Vec<EpollEvent>,
    }

    impl Poller {
        /// Creates the epoll instance (close-on-exec).
        pub fn new() -> io::Result<Poller> {
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Poller {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(drop)
        }

        /// Changes the interest set of a watched descriptor.
        pub fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(drop)
        }

        /// Stops watching a descriptor (must happen before the fd closes).
        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
        }

        /// Blocks until readiness or `timeout` (`None` = indefinitely);
        /// appends events to `out` and returns how many arrived.
        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms: c_int = match timeout {
                None => -1,
                // Round up so a 100µs deadline doesn't busy-spin at 0ms.
                Some(d) => c_int::try_from(d.as_millis().saturating_add(1).min(i32::MAX as u128))
                    .unwrap_or(i32::MAX),
            };
            let n = loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for ev in &self.buf[..n] {
                let events = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: events & EPOLLOUT != 0,
                    hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

/// Non-Linux Unix: a poll(2) set rebuilt on every wait. O(n) per wake,
/// which is fine at the connection counts the fallback targets.
#[cfg(all(unix, not(target_os = "linux")))]
mod posix {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::io;
    use std::os::raw::{c_int, c_short};
    use std::time::Duration;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u32, timeout: c_int) -> c_int;
    }

    /// A poll(2)-backed poller.
    pub struct Poller {
        watched: HashMap<i32, (u64, Interest)>,
    }

    impl Poller {
        /// Creates an empty poll set.
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                watched: HashMap::new(),
            })
        }

        /// Starts watching `fd` under `token`.
        pub fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.watched.insert(fd, (token, interest));
            Ok(())
        }

        /// Changes the interest set of a watched descriptor.
        pub fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            self.watched.insert(fd, (token, interest));
            Ok(())
        }

        /// Stops watching a descriptor.
        pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
            self.watched.remove(&fd);
            Ok(())
        }

        /// Blocks until readiness or `timeout` (`None` = indefinitely).
        pub fn wait(
            &mut self,
            out: &mut Vec<Event>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let mut fds: Vec<PollFd> = self
                .watched
                .iter()
                .map(|(&fd, &(_, interest))| PollFd {
                    fd,
                    events: if interest.readable { POLLIN } else { 0 }
                        | if interest.writable { POLLOUT } else { 0 },
                    revents: 0,
                })
                .collect();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => c_int::try_from(d.as_millis().saturating_add(1).min(i32::MAX as u128))
                    .unwrap_or(i32::MAX),
            };
            let n = loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as u32, timeout_ms) };
                if n >= 0 {
                    break n as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for pfd in fds.iter().filter(|p| p.revents != 0) {
                let (token, _) = self.watched[&pfd.fd];
                out.push(Event {
                    token,
                    readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(n)
        }
    }
}

/// Smallest-positive-duration helper: the next wait timeout given an
/// optional deadline, saturating at zero when the deadline passed.
pub fn timeout_until(deadline: Option<std::time::Instant>) -> Option<Duration> {
    deadline.map(|d| d.saturating_duration_since(std::time::Instant::now()))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::net::UnixStream;
    // `AsRawFd` is in scope for the fd() helper below.
    use std::os::unix::io::AsRawFd;

    #[test]
    fn pipe_readability_round_trip() {
        let (mut a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "nothing written yet");

        a.write_all(b"x").unwrap();
        a.flush().unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        poller.deregister(b.as_raw_fd()).unwrap();
        events.clear();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0, "deregistered descriptors never fire");
    }

    #[test]
    fn hangup_is_reported_readable() {
        let (a, b) = UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(b.as_raw_fd(), 1, Interest::READ).unwrap();
        drop(a);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            events.iter().any(|e| e.readable || e.hangup),
            "peer close must wake the poller: {events:?}"
        );
    }
}
