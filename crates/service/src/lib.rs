#![warn(missing_docs)]

//! # sqo-service
//!
//! The concurrent query-serving subsystem over the semantic optimizer:
//! long-lived prepared schemas, a parameterized semantic-plan cache, and
//! admission control behind a JSON-lines-over-TCP front end — all on the
//! standard library alone.
//!
//! * [`registry`] — named sessions holding a shared
//!   [`sqo_core::PreparedOptimizer`] (schema parse, Step-1 translation
//!   and residue compilation done once) plus a [`sqo_core::PlanCache`];
//!   constraint reloads bump the generation and invalidate the cache.
//! * [`admission`] — a bounded worker pool: full queue ⇒ shed
//!   (`overloaded`), expired deadline ⇒ dropped unexecuted
//!   (`deadline_exceeded`).
//! * [`server`] — the wire protocol: one JSON request per line, one JSON
//!   response per line; responses embed the optimizer's explain report.
//!   Every `query` is traced (`trace_id` = `session:generation:seq`) and
//!   can return its span events; `metrics` reports latency-histogram
//!   quantiles per stage; `slowlog` returns the slow-query ring buffer.
//! * [`slowlog`] — the bounded slow-query explain log.
//! * [`json`] — the tiny JSON reader backing the protocol.
//!
//! ```no_run
//! use sqo_service::{Server, ServerConfig, SessionRegistry, SessionSpec};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(SessionRegistry::new());
//! registry
//!     .prepare("default", SessionSpec::University,
//!              Some("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad)."))
//!     .unwrap();
//! let server = Server::bind(ServerConfig::default(), registry).unwrap();
//! server.run().unwrap();
//! ```

pub mod admission;
#[cfg(unix)]
mod event_loop;
pub mod framing;
pub mod json;
#[cfg(unix)]
pub mod poll;
pub mod registry;
pub mod server;
pub mod slowlog;

pub use registry::{Session, SessionRegistry, SessionSpec};
pub use server::{ServeMode, Server, ServerConfig};
pub use slowlog::{SlowEntry, SlowLog};

/// Why a request was not answered with a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request line was not a valid protocol request.
    BadRequest(String),
    /// The named session has not been prepared.
    UnknownSession(String),
    /// The admission queue was full; the request was shed.
    Overloaded,
    /// The deadline passed before a result was produced.
    DeadlineExceeded,
    /// The optimizer rejected the query (parse/translation error).
    Optimize(String),
}

impl ServeError {
    /// Stable machine-readable error kind for the wire envelope.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::BadRequest(_) => "bad_request",
            ServeError::UnknownSession(_) => "unknown_session",
            ServeError::Overloaded => "overloaded",
            ServeError::DeadlineExceeded => "deadline_exceeded",
            ServeError::Optimize(_) => "optimize_error",
        }
    }

    /// Human-readable detail.
    pub fn message(&self) -> String {
        match self {
            ServeError::BadRequest(m) => m.clone(),
            ServeError::UnknownSession(s) => format!("session {s:?} is not prepared"),
            ServeError::Overloaded => "admission queue full; request shed".to_string(),
            ServeError::DeadlineExceeded => "deadline exceeded".to_string(),
            ServeError::Optimize(m) => m.clone(),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for ServeError {}
