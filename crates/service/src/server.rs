//! The JSON-lines-over-TCP front end.
//!
//! One request per line, one response per line, `std::net` only. A
//! connection may issue any number of requests; `query` requests pass
//! through the admission pool while control requests (`ping`,
//! `metrics`, `prepare`, `reload_ic`, `shutdown`) are answered inline.
//!
//! Request shapes (`op` selects the operation):
//!
//! ```text
//! {"op":"ping"}
//! {"op":"query","session":"default","oql":"select ...","timeout_ms":250}
//! {"op":"prepare","session":"s","university":true,"ic":"ic IC4: ..."}
//! {"op":"prepare","session":"s","schema":"<ODL source>"}
//! {"op":"reload_ic","session":"s","ic":"ic IC4: ..."}
//! {"op":"metrics"}
//! {"op":"shutdown"}
//! ```
//!
//! Responses are `{"ok":true,...}` or
//! `{"ok":false,"error":{"kind":...,"message":...}}`; see
//! `schemas/serve.schema.json` for the full envelope.

use crate::admission::{Pool, Task};
use crate::json::{self, Json};
use crate::registry::{SessionRegistry, SessionSpec};
use crate::ServeError;
use sqo_obs as obs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Maximum queued (admitted but unstarted) queries before shedding.
    pub queue_capacity: usize,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_timeout_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_capacity: 64,
            default_timeout_ms: 10_000,
        }
    }
}

struct Shared {
    registry: Arc<SessionRegistry>,
    pool: Pool,
    stop: AtomicBool,
    local_addr: SocketAddr,
    workers: usize,
    queue_capacity: usize,
    default_timeout: Duration,
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds `cfg.addr` and spawns the worker pool.
    pub fn bind(cfg: ServerConfig, registry: Arc<SessionRegistry>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry,
            pool: Pool::new(cfg.workers, cfg.queue_capacity),
            stop: AtomicBool::new(false),
            local_addr,
            workers: cfg.workers.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            default_timeout: Duration::from_millis(cfg.default_timeout_ms.max(1)),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with a `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Accept loop. Returns after a `shutdown` request. Each connection
    /// is served by its own thread; the bounded resource is the query
    /// queue, not the connection count.
    pub fn run(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let _ = handle_conn(&shared, stream);
                obs::flush_local();
            });
        }
        Ok(())
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(shared, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        // By the time the client sees a response, this thread's counter
        // bumps are globally visible (metrics may be read elsewhere).
        obs::flush_local();
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
    }
    Ok(())
}

fn error_response(e: &ServeError) -> String {
    format!(
        r#"{{"ok":false,"error":{{"kind":{},"message":{}}}}}"#,
        obs::json_string(e.kind()),
        obs::json_string(&e.message())
    )
}

fn handle_line(shared: &Arc<Shared>, line: &str) -> String {
    match dispatch(shared, line) {
        Ok(resp) => resp,
        Err(e) => error_response(&e),
    }
}

fn dispatch(shared: &Arc<Shared>, line: &str) -> Result<String, ServeError> {
    let req = json::parse(line).map_err(ServeError::BadRequest)?;
    let op = req
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing \"op\"".into()))?;
    match op {
        "ping" => Ok(r#"{"ok":true,"op":"ping"}"#.to_string()),
        "metrics" => Ok(metrics_response(shared)),
        "prepare" => prepare(shared, &req),
        "reload_ic" => reload_ic(shared, &req),
        "query" => query(shared, &req),
        "shutdown" => {
            shared.stop.store(true, Ordering::Release);
            // Unblock the accept loop with a throwaway connection.
            let _ = TcpStream::connect(shared.local_addr);
            Ok(r#"{"ok":true,"op":"shutdown"}"#.to_string())
        }
        other => Err(ServeError::BadRequest(format!("unknown op {other:?}"))),
    }
}

fn session_name(req: &Json) -> Result<&str, ServeError> {
    match req.get("session") {
        None => Ok("default"),
        Some(v) => v
            .as_str()
            .ok_or_else(|| ServeError::BadRequest("\"session\" must be a string".into())),
    }
}

fn metrics_response(shared: &Arc<Shared>) -> String {
    let sessions: Vec<String> = shared
        .registry
        .names()
        .into_iter()
        .filter_map(|name| shared.registry.get(&name))
        .map(|s| {
            format!(
                r#"{{"name":{},"generation":{},"cached_templates":{}}}"#,
                obs::json_string(s.name()),
                s.prepared().generation(),
                s.cache().len()
            )
        })
        .collect();
    format!(
        r#"{{"ok":true,"op":"metrics","workers":{},"queue_capacity":{},"queue_depth":{},"sessions":[{}],"stats":{}}}"#,
        shared.workers,
        shared.queue_capacity,
        shared.pool.queue_depth(),
        sessions.join(","),
        json::compact(&obs::snapshot_json())
    )
}

fn prepare(shared: &Arc<Shared>, req: &Json) -> Result<String, ServeError> {
    let name = session_name(req)?;
    let spec = if req.get("university").and_then(Json::as_bool) == Some(true) {
        SessionSpec::University
    } else {
        let src = req.get("schema").and_then(Json::as_str).ok_or_else(|| {
            ServeError::BadRequest("need \"university\":true or \"schema\"".into())
        })?;
        SessionSpec::Odl(src.to_string())
    };
    let ic = req.get("ic").and_then(Json::as_str);
    let generation = shared.registry.prepare(name, spec, ic)?;
    Ok(format!(
        r#"{{"ok":true,"op":"prepare","session":{},"generation":{generation}}}"#,
        obs::json_string(name)
    ))
}

fn reload_ic(shared: &Arc<Shared>, req: &Json) -> Result<String, ServeError> {
    let name = session_name(req)?;
    let ic = req
        .get("ic")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing \"ic\"".into()))?;
    let session = shared
        .registry
        .get(name)
        .ok_or_else(|| ServeError::UnknownSession(name.to_string()))?;
    let generation = session.reload_ic(ic)?;
    Ok(format!(
        r#"{{"ok":true,"op":"reload_ic","session":{},"generation":{generation}}}"#,
        obs::json_string(name)
    ))
}

fn query(shared: &Arc<Shared>, req: &Json) -> Result<String, ServeError> {
    obs::add(obs::Counter::ServeRequests, 1);
    let name = session_name(req)?.to_string();
    let oql = req
        .get("oql")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing \"oql\"".into()))?
        .to_string();
    let timeout = req
        .get("timeout_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis)
        .unwrap_or(shared.default_timeout);
    let session = shared
        .registry
        .get(&name)
        .ok_or_else(|| ServeError::UnknownSession(name.clone()))?;
    let deadline = Instant::now() + timeout;

    type Answer = Result<(String, &'static str, u64, u128), String>;
    let (tx, rx) = mpsc::sync_channel::<Answer>(1);
    let task_session = Arc::clone(&session);
    let admitted = shared.pool.submit(Task {
        deadline,
        run: Box::new(move || {
            let prep = task_session.prepared();
            let started = Instant::now();
            let answer = prep
                .optimize_cached(task_session.cache(), &oql)
                .map(|(report, outcome)| {
                    (
                        json::compact(&report.explain_json()),
                        outcome.label(),
                        prep.generation(),
                        started.elapsed().as_micros(),
                    )
                })
                .map_err(|e| e.to_string());
            let _ = tx.send(answer);
        }),
    });
    if !admitted {
        return Err(ServeError::Overloaded);
    }
    let remaining = deadline.saturating_duration_since(Instant::now());
    match rx.recv_timeout(remaining) {
        Ok(Ok((report, cache, generation, elapsed_us))) => Ok(format!(
            r#"{{"ok":true,"op":"query","session":{},"generation":{generation},"cache":{},"elapsed_us":{elapsed_us},"report":{report}}}"#,
            obs::json_string(&name),
            obs::json_string(cache)
        )),
        Ok(Err(msg)) => Err(ServeError::Optimize(msg)),
        Err(_) => {
            // Timed out waiting, or the pool dropped the expired task.
            obs::add(obs::Counter::ServeDeadlineExceeded, 1);
            Err(ServeError::DeadlineExceeded)
        }
    }
}
