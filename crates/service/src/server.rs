//! The JSON-lines-over-TCP front end.
//!
//! One request per line, one response per line, `std::net` only. A
//! connection may issue any number of requests; `query` requests pass
//! through the admission pool while control requests (`ping`,
//! `metrics`, `prepare`, `reload_ic`, `shutdown`) are answered inline.
//!
//! Request shapes (`op` selects the operation):
//!
//! ```text
//! {"op":"ping"}
//! {"op":"query","session":"default","oql":"select ...","timeout_ms":250}
//! {"op":"query","session":"default","oql":"...","trace":true,"execute":true}
//! {"op":"query","session":"default","oql":"...","search":"bfs"}
//! {"op":"prepare","session":"s","university":true,"ic":"ic IC4: ..."}
//! {"op":"prepare","session":"s","university":true,"data":true}
//! {"op":"prepare","session":"s","schema":"<ODL source>"}
//! {"op":"reload_ic","session":"s","ic":"ic IC4: ..."}
//! {"op":"create","session":"s","class":"Person","attrs":{"name":"x","age":30}}
//! {"op":"link","session":"s","from":3,"rel":"takes","to":9}
//! {"op":"persist","session":"s"}
//! {"op":"metrics"}
//! {"op":"slowlog"}
//! {"op":"shutdown"}
//! ```
//!
//! `create` and `link` mutate the session's bound object base; when the
//! base was opened from a store directory (`sqo serve --store-path`)
//! the mutation is WAL-logged before it is acknowledged, and `persist`
//! forces a compact snapshot so the next recovery replays a short tail.
//!
//! Every `query` gets a deterministic trace id (`session:generation:seq`)
//! and is traced end to end: admission wait, plan-cache lookup, search,
//! and (with `"execute":true` on a session with bound data) plan
//! execution all appear as span events, returned when the request set
//! `"trace":true` and recorded to the slow-query log when the service
//! time exceeds the threshold. Responses are `{"ok":true,...}` or
//! `{"ok":false,"error":{"kind":...,"message":...}}`; see
//! `schemas/serve.schema.json` for the full envelope.

use crate::admission::{Pool, Task};
use crate::json::{self, Json};
use crate::registry::{SessionRegistry, SessionSpec};
use crate::slowlog::{SlowEntry, SlowLog};
use crate::ServeError;
use sqo_datalog::search;
use sqo_obs as obs;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Histogram series pinned into every `metrics` reply (with zero samples
/// until recorded), so consumers see a stable key set from the first
/// request on.
const PINNED_HISTS: [&str; 7] = [
    "serve.request",
    "serve.wait",
    "cache.lookup",
    "pipeline.optimize",
    "step3.search",
    "objdb.execute",
    "store.recover",
];

/// How the server multiplexes connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// One OS thread per connection, blocking reads (the PR-3 design,
    /// kept as the ablation baseline).
    Threaded,
    /// A single readiness-driven event loop over non-blocking sockets;
    /// connections are per-loop state machines and only CPU-bound query
    /// work runs on the worker pool. Falls back to [`ServeMode::Threaded`]
    /// on non-Unix targets.
    EventLoop,
}

impl ServeMode {
    /// Parses the `--serve-mode` flag value.
    pub fn parse(s: &str) -> Option<ServeMode> {
        match s {
            "threaded" => Some(ServeMode::Threaded),
            "event-loop" => Some(ServeMode::EventLoop),
            _ => None,
        }
    }

    /// The wire label reported under `"serve_mode"` in `metrics`.
    pub fn label(self) -> &'static str {
        match self {
            ServeMode::Threaded => "threaded",
            ServeMode::EventLoop => "event-loop",
        }
    }
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:7878` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Maximum queued (admitted but unstarted) queries before shedding.
    pub queue_capacity: usize,
    /// Deadline applied when a request carries no `timeout_ms`.
    pub default_timeout_ms: u64,
    /// Service-time threshold above which a query enters the slow log.
    pub slow_ms: u64,
    /// Slow-log ring-buffer capacity (newest entries kept).
    pub slowlog_capacity: usize,
    /// When set, every slow-log entry is also appended to this file as a
    /// JSON line.
    pub slowlog_path: Option<String>,
    /// Connection multiplexing strategy.
    pub mode: ServeMode,
    /// Largest accepted request line in bytes (event-loop mode only);
    /// a longer line is answered with `bad_request` and the connection
    /// is closed, bounding per-connection memory.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_capacity: 64,
            default_timeout_ms: 10_000,
            slow_ms: 250,
            slowlog_capacity: 128,
            slowlog_path: None,
            mode: ServeMode::EventLoop,
            max_frame_bytes: 1 << 20,
        }
    }
}

pub(crate) struct Shared {
    pub(crate) registry: Arc<SessionRegistry>,
    pub(crate) pool: Pool,
    pub(crate) stop: AtomicBool,
    pub(crate) local_addr: SocketAddr,
    pub(crate) workers: usize,
    pub(crate) queue_capacity: usize,
    pub(crate) default_timeout: Duration,
    pub(crate) slowlog: Arc<SlowLog>,
    pub(crate) mode: ServeMode,
    pub(crate) max_frame_bytes: usize,
}

/// A bound (but not yet running) server.
pub struct Server {
    pub(crate) listener: TcpListener,
    pub(crate) shared: Arc<Shared>,
}

impl Server {
    /// Binds `cfg.addr` and spawns the worker pool.
    pub fn bind(cfg: ServerConfig, registry: Arc<SessionRegistry>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let slowlog = SlowLog::new(
            cfg.slowlog_capacity,
            cfg.slow_ms,
            cfg.slowlog_path.as_deref(),
        )?;
        for name in PINNED_HISTS {
            obs::hist_touch(name);
        }
        let shared = Arc::new(Shared {
            registry,
            pool: Pool::new(cfg.workers, cfg.queue_capacity),
            stop: AtomicBool::new(false),
            local_addr,
            workers: cfg.workers.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            default_timeout: Duration::from_millis(cfg.default_timeout_ms.max(1)),
            slowlog: Arc::new(slowlog),
            mode: effective_mode(cfg.mode),
            max_frame_bytes: cfg.max_frame_bytes.max(1024),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (useful with a `:0` port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Serves until a `shutdown` request, multiplexing connections
    /// according to the configured [`ServeMode`].
    pub fn run(self) -> std::io::Result<()> {
        match self.shared.mode {
            ServeMode::Threaded => self.run_threaded(),
            #[cfg(unix)]
            ServeMode::EventLoop => crate::event_loop::run(self.listener, self.shared),
            #[cfg(not(unix))]
            ServeMode::EventLoop => unreachable!("effective_mode folds to Threaded off Unix"),
        }
    }

    /// Accept loop of the threaded ablation mode. Each connection is
    /// served by its own thread; the bounded resource is the query
    /// queue, not the connection count.
    fn run_threaded(self) -> std::io::Result<()> {
        for stream in self.listener.incoming() {
            if self.shared.stop.load(Ordering::Acquire) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || {
                let _ = handle_conn(&shared, stream);
                obs::flush_local();
            });
        }
        Ok(())
    }
}

/// Folds the requested mode to what the target can actually run: the
/// readiness loop needs a Unix poller, elsewhere `threaded` serves.
fn effective_mode(requested: ServeMode) -> ServeMode {
    if cfg!(unix) {
        requested
    } else {
        ServeMode::Threaded
    }
}

fn handle_conn(shared: &Arc<Shared>, stream: TcpStream) -> std::io::Result<()> {
    // One small request line begets one small response line; letting
    // Nagle hold either back just couples the protocol to the peer's
    // delayed-ACK timer (tens of ms per round trip on loopback).
    let _ = stream.set_nodelay(true);
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = handle_line(shared, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        // By the time the client sees a response, this thread's counter
        // bumps are globally visible (metrics may be read elsewhere).
        obs::flush_local();
        if shared.stop.load(Ordering::Acquire) {
            // Unblock the accept loop only now that the goodbye line is
            // flushed: doing it inside the shutdown handler would race
            // process exit against this thread's response write.
            let _ = TcpStream::connect(shared.local_addr);
            break;
        }
    }
    Ok(())
}

pub(crate) fn error_response(e: &ServeError) -> String {
    format!(
        r#"{{"ok":false,"error":{{"kind":{},"message":{}}}}}"#,
        obs::json_string(e.kind()),
        obs::json_string(&e.message())
    )
}

/// What a request line routed to: both serving modes share this so the
/// wire bytes per request are identical regardless of transport.
pub(crate) enum Routed {
    /// Fully handled inline (control ops and every error path).
    Done(String),
    /// An admitted-shape `query`: the caller decides how to wait on the
    /// worker pool (blocking channel in threaded mode, completion queue
    /// in the event loop).
    Query(Box<QueryJob>),
    /// `shutdown`: the stop flag is already set; write this response,
    /// then stop serving.
    Shutdown(String),
}

pub(crate) fn route(shared: &Arc<Shared>, line: &str) -> Routed {
    match route_inner(shared, line) {
        Ok(routed) => routed,
        Err(e) => Routed::Done(error_response(&e)),
    }
}

fn route_inner(shared: &Arc<Shared>, line: &str) -> Result<Routed, ServeError> {
    let req = json::parse(line).map_err(ServeError::BadRequest)?;
    let op = req
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing \"op\"".into()))?;
    match op {
        "ping" => Ok(Routed::Done(r#"{"ok":true,"op":"ping"}"#.to_string())),
        "metrics" => Ok(Routed::Done(metrics_response(shared))),
        "slowlog" => Ok(Routed::Done(slowlog_response(shared))),
        "prepare" => prepare(shared, &req).map(Routed::Done),
        "reload_ic" => reload_ic(shared, &req).map(Routed::Done),
        "create" => create(shared, &req).map(Routed::Done),
        "link" => link(shared, &req).map(Routed::Done),
        "persist" => persist(shared, &req).map(Routed::Done),
        "query" => Ok(Routed::Query(Box::new(parse_query(shared, &req)?))),
        "shutdown" => {
            // The transport unblocks/exits only after the response line
            // is on the wire (see the per-mode loops for why).
            shared.stop.store(true, Ordering::Release);
            Ok(Routed::Shutdown(
                r#"{"ok":true,"op":"shutdown"}"#.to_string(),
            ))
        }
        other => Err(ServeError::BadRequest(format!("unknown op {other:?}"))),
    }
}

pub(crate) fn handle_line(shared: &Arc<Shared>, line: &str) -> String {
    match route(shared, line) {
        Routed::Done(resp) | Routed::Shutdown(resp) => resp,
        Routed::Query(job) => run_query_sync(shared, *job),
    }
}

fn session_name(req: &Json) -> Result<&str, ServeError> {
    match req.get("session") {
        None => Ok("default"),
        Some(v) => v
            .as_str()
            .ok_or_else(|| ServeError::BadRequest("\"session\" must be a string".into())),
    }
}

/// Wire display name for a histogram series: request-level `serve.*`
/// series keep their name; pipeline spans get a `stage/` prefix.
fn hist_display_name(name: &str) -> String {
    if name.starts_with("serve.") {
        name.to_string()
    } else {
        format!("stage/{name}")
    }
}

/// The `"hist"` section of the metrics reply: per-series quantile
/// summaries keyed by display name, in sorted (deterministic) order.
fn hist_section(snapshot: &obs::Snapshot) -> String {
    let entries: BTreeMap<String, String> = snapshot
        .hists
        .iter()
        .map(|(name, h)| (hist_display_name(name), json::compact(&h.summary_json())))
        .collect();
    let body: Vec<String> = entries
        .iter()
        .map(|(name, summary)| format!("{}:{summary}", obs::json_string(name)))
        .collect();
    format!("{{{}}}", body.join(","))
}

fn metrics_response(shared: &Arc<Shared>) -> String {
    let sessions: Vec<String> = shared
        .registry
        .names()
        .into_iter()
        .filter_map(|name| shared.registry.get(&name))
        .map(|s| {
            let store_generation = s
                .data()
                .map(|db| {
                    db.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .store_generation()
                })
                .unwrap_or(0);
            format!(
                r#"{{"name":{},"generation":{},"cached_templates":{},"cache_shards":{},"store_generation":{}}}"#,
                obs::json_string(s.name()),
                s.prepared().generation(),
                s.cache().len(),
                s.cache().shard_count(),
                store_generation
            )
        })
        .collect();
    let snapshot = obs::snapshot();
    format!(
        r#"{{"ok":true,"op":"metrics","serve_mode":{},"workers":{},"queue_capacity":{},"queue_depth":{},"queue_depth_hwm":{},"sessions":[{}],"hist":{},"stats":{}}}"#,
        obs::json_string(shared.mode.label()),
        shared.workers,
        shared.queue_capacity,
        shared.pool.queue_depth(),
        shared.pool.queue_depth_hwm(),
        sessions.join(","),
        hist_section(&snapshot),
        json::compact(&snapshot.to_json())
    )
}

fn slowlog_response(shared: &Arc<Shared>) -> String {
    let entries = shared.slowlog.entries();
    format!(
        r#"{{"ok":true,"op":"slowlog","slow_threshold_ms":{},"count":{},"entries":[{}]}}"#,
        shared.slowlog.threshold_ns() / 1_000_000,
        entries.len(),
        entries.join(",")
    )
}

fn prepare(shared: &Arc<Shared>, req: &Json) -> Result<String, ServeError> {
    let name = session_name(req)?;
    let spec = if req.get("university").and_then(Json::as_bool) == Some(true) {
        SessionSpec::University
    } else {
        let src = req.get("schema").and_then(Json::as_str).ok_or_else(|| {
            ServeError::BadRequest("need \"university\":true or \"schema\"".into())
        })?;
        SessionSpec::Odl(src.to_string())
    };
    let ic = req.get("ic").and_then(Json::as_str);
    let generation = shared.registry.prepare(name, spec, ic)?;
    if req.get("data").and_then(Json::as_bool) == Some(true) {
        let session = shared
            .registry
            .get(name)
            .ok_or_else(|| ServeError::UnknownSession(name.to_string()))?;
        session.attach_university_data()?;
    }
    Ok(format!(
        r#"{{"ok":true,"op":"prepare","session":{},"generation":{generation}}}"#,
        obs::json_string(name)
    ))
}

fn reload_ic(shared: &Arc<Shared>, req: &Json) -> Result<String, ServeError> {
    let name = session_name(req)?;
    let ic = req
        .get("ic")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing \"ic\"".into()))?;
    let session = shared
        .registry
        .get(name)
        .ok_or_else(|| ServeError::UnknownSession(name.to_string()))?;
    let generation = session.reload_ic(ic)?;
    Ok(format!(
        r#"{{"ok":true,"op":"reload_ic","session":{},"generation":{generation}}}"#,
        obs::json_string(name)
    ))
}

/// Resolve the session named in `req` and its bound object base, or a
/// `bad_request` explaining that the write op needs attached data.
fn session_with_data(
    shared: &Arc<Shared>,
    req: &Json,
    op: &str,
) -> Result<
    (
        Arc<crate::registry::Session>,
        Arc<std::sync::Mutex<sqo_objdb::ObjectDb>>,
    ),
    ServeError,
> {
    let name = session_name(req)?;
    let session = shared
        .registry
        .get(name)
        .ok_or_else(|| ServeError::UnknownSession(name.to_string()))?;
    let db = session.data().ok_or_else(|| {
        ServeError::BadRequest(format!(
            "\"{op}\" requires bound data (prepare with \"data\":true or serve with --store-path)"
        ))
    })?;
    Ok((session, db))
}

/// Convert a scalar JSON attribute value to an object-base value.
/// Whole numbers within `i64` range become `Int` (the object layer
/// coerces to `Real` where the schema declares a float); whole numbers
/// beyond `i64` range stay `Real` rather than silently saturating;
/// OIDs must be sent as `{"oid":N}`.
fn json_to_value(v: &Json) -> Result<sqo_objdb::Value, ServeError> {
    use sqo_objdb::{Oid, Value};
    // Exact f64 bounds of i64: -2^63 is representable, 2^63 is the
    // first whole value that is not (as i64::MAX rounds up to it).
    const I64_MIN_F: f64 = i64::MIN as f64;
    Ok(match v {
        Json::Bool(b) => Value::Bool(*b),
        Json::Str(s) => Value::Str(s.clone()),
        Json::Num(n) if n.fract() == 0.0 && *n >= I64_MIN_F && *n < -I64_MIN_F => {
            Value::Int(*n as i64)
        }
        Json::Num(n) => Value::Real(*n),
        Json::Obj(m) => match m.get("oid").and_then(Json::as_u64) {
            Some(oid) if m.len() == 1 => Value::Obj(Oid(oid)),
            _ => {
                return Err(ServeError::BadRequest(
                    "object attribute values must be {\"oid\":N}".into(),
                ))
            }
        },
        other => {
            return Err(ServeError::BadRequest(format!(
                "unsupported attribute value {other:?}"
            )))
        }
    })
}

/// `create`: instantiate a class object with the given attributes on
/// the session's bound object base. Acknowledged only after the write
/// is WAL-logged (when the base is store-backed).
fn create(shared: &Arc<Shared>, req: &Json) -> Result<String, ServeError> {
    let (session, db) = session_with_data(shared, req, "create")?;
    let class = req
        .get("class")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing \"class\"".into()))?;
    let mut attrs: Vec<(String, sqo_objdb::Value)> = Vec::new();
    if let Some(obj) = req.get("attrs") {
        let Json::Obj(m) = obj else {
            return Err(ServeError::BadRequest("\"attrs\" must be an object".into()));
        };
        for (k, v) in m {
            attrs.push((k.clone(), json_to_value(v)?));
        }
    }
    let mut db = db.lock().unwrap_or_else(|e| e.into_inner());
    let borrowed: Vec<(&str, sqo_objdb::Value)> =
        attrs.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
    let oid = db
        .create(class, borrowed)
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
    Ok(format!(
        r#"{{"ok":true,"op":"create","session":{},"oid":{},"store_generation":{}}}"#,
        obs::json_string(session.name()),
        oid.0,
        db.store_generation()
    ))
}

/// `link`: connect two objects through a relationship on the session's
/// bound object base.
fn link(shared: &Arc<Shared>, req: &Json) -> Result<String, ServeError> {
    let (session, db) = session_with_data(shared, req, "link")?;
    let rel = req
        .get("rel")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing \"rel\"".into()))?;
    let from = req
        .get("from")
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::BadRequest("missing \"from\"".into()))?;
    let to = req
        .get("to")
        .and_then(Json::as_u64)
        .ok_or_else(|| ServeError::BadRequest("missing \"to\"".into()))?;
    let mut db = db.lock().unwrap_or_else(|e| e.into_inner());
    db.link(sqo_objdb::Oid(from), rel, sqo_objdb::Oid(to))
        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
    Ok(format!(
        r#"{{"ok":true,"op":"link","session":{},"store_generation":{}}}"#,
        obs::json_string(session.name()),
        db.store_generation()
    ))
}

/// `persist`: force a compact snapshot of the session's durable store
/// and truncate its WALs.
fn persist(shared: &Arc<Shared>, req: &Json) -> Result<String, ServeError> {
    let (session, db) = session_with_data(shared, req, "persist")?;
    let db = db.lock().unwrap_or_else(|e| e.into_inner());
    let report = db
        .persist()
        .map_err(|e| ServeError::BadRequest(e.to_string()))?
        .ok_or_else(|| {
            ServeError::BadRequest(
                "\"persist\" requires a durable store (serve with --store-path)".into(),
            )
        })?;
    Ok(format!(
        r#"{{"ok":true,"op":"persist","session":{},"snapshot_bytes":{},"store_generation":{}}}"#,
        obs::json_string(session.name()),
        report.snapshot_bytes,
        report.generation
    ))
}

/// What the worker sends back for an accepted, successful query.
pub(crate) struct QueryAnswer {
    report: String,
    cache: &'static str,
    generation: u64,
    elapsed_us: u128,
    trace_id: String,
    /// Span events as a JSON array, when the request asked for them.
    trace_json: Option<String>,
    /// `(plan_index, plan_cost, answer_rows)` when execution ran; the
    /// index/cost are `None` on contradiction (nothing to execute).
    exec: Option<(Option<usize>, Option<f64>, usize)>,
}

/// A validated `query` request, admitted-shape but not yet submitted.
pub(crate) struct QueryJob {
    pub(crate) name: String,
    pub(crate) oql: String,
    pub(crate) deadline: Instant,
    pub(crate) want_trace: bool,
    pub(crate) want_execute: bool,
    pub(crate) strategy: Option<search::Strategy>,
    pub(crate) session: Arc<crate::registry::Session>,
    pub(crate) trace_id: String,
}

/// Validates a `query` request into a [`QueryJob`]. Counts the request
/// (`serve.requests`) whether or not validation succeeds, exactly as
/// the seed thread-per-connection path did.
fn parse_query(shared: &Arc<Shared>, req: &Json) -> Result<QueryJob, ServeError> {
    obs::add(obs::Counter::ServeRequests, 1);
    let name = session_name(req)?.to_string();
    let oql = req
        .get("oql")
        .and_then(Json::as_str)
        .ok_or_else(|| ServeError::BadRequest("missing \"oql\"".into()))?
        .to_string();
    let timeout = req
        .get("timeout_ms")
        .and_then(Json::as_u64)
        .map(Duration::from_millis)
        .unwrap_or(shared.default_timeout);
    let want_trace = req.get("trace").and_then(Json::as_bool) == Some(true);
    let want_execute = req.get("execute").and_then(Json::as_bool) == Some(true);
    let strategy = match req.get("search") {
        None => None,
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| ServeError::BadRequest("\"search\" must be a string".into()))?;
            Some(search::Strategy::parse(s).ok_or_else(|| {
                ServeError::BadRequest(format!(
                    "unknown \"search\" strategy {s:?} (expected \"bfs\" or \"best-first\")"
                ))
            })?)
        }
    };
    let session = shared
        .registry
        .get(&name)
        .ok_or_else(|| ServeError::UnknownSession(name.clone()))?;
    if want_execute && session.data().is_none() {
        return Err(ServeError::BadRequest(
            "\"execute\":true requires prepared data (prepare with \"data\":true)".into(),
        ));
    }
    let trace_id = session.next_trace_id();
    Ok(QueryJob {
        name,
        oql,
        deadline: Instant::now() + timeout,
        want_trace,
        want_execute,
        strategy,
        session,
        trace_id,
    })
}

/// Submits the job to the worker pool; `finish` runs on the worker with
/// the final response line (success or `optimize_error`). Returns
/// `false` when the queue shed the request — `finish` never runs then.
pub(crate) fn submit_job(
    shared: &Arc<Shared>,
    job: QueryJob,
    finish: Box<dyn FnOnce(String) + Send>,
) -> bool {
    let slowlog = Arc::clone(&shared.slowlog);
    let deadline = job.deadline;
    shared.pool.submit(Task {
        deadline,
        submitted: Instant::now(),
        run: Box::new(move |wait| {
            let answer = run_query(
                &job.session,
                &slowlog,
                job.trace_id,
                &job.oql,
                wait,
                job.want_trace,
                job.want_execute,
                job.strategy,
            );
            let resp = match answer {
                Ok(a) => format_query_ok(&job.name, &a),
                Err(msg) => error_response(&ServeError::Optimize(msg)),
            };
            finish(resp);
        }),
    })
}

/// Threaded-mode query path: submit, then block the connection thread
/// until the response or the deadline, whichever comes first.
fn run_query_sync(shared: &Arc<Shared>, job: QueryJob) -> String {
    let deadline = job.deadline;
    let (tx, rx) = mpsc::sync_channel::<String>(1);
    let admitted = submit_job(
        shared,
        job,
        Box::new(move |resp| {
            let _ = tx.send(resp);
        }),
    );
    if !admitted {
        return error_response(&ServeError::Overloaded);
    }
    let remaining = deadline.saturating_duration_since(Instant::now());
    match rx.recv_timeout(remaining) {
        Ok(resp) => resp,
        Err(_) => {
            // Timed out waiting, or the pool dropped the expired task.
            obs::add(obs::Counter::ServeDeadlineExceeded, 1);
            error_response(&ServeError::DeadlineExceeded)
        }
    }
}

/// The success envelope for a completed query, shared by both serving
/// modes so transports cannot drift apart on the wire.
pub(crate) fn format_query_ok(name: &str, a: &QueryAnswer) -> String {
    let mut extra = String::new();
    if let Some((plan_index, plan_cost, answers)) = a.exec {
        let idx = plan_index.map_or("null".to_string(), |i| i.to_string());
        let cost = plan_cost.map_or("null".to_string(), |c| format!("{c:.1}"));
        extra.push_str(&format!(
            r#","plan_index":{idx},"plan_cost":{cost},"answers":{answers}"#
        ));
    }
    if let Some(trace) = &a.trace_json {
        extra.push_str(&format!(r#","trace":{trace}"#));
    }
    format!(
        r#"{{"ok":true,"op":"query","session":{},"generation":{},"cache":{},"elapsed_us":{},"trace_id":{}{extra},"report":{}}}"#,
        obs::json_string(name),
        a.generation,
        obs::json_string(a.cache),
        a.elapsed_us,
        obs::json_string(&a.trace_id),
        a.report
    )
}

/// Executes one admitted query on a worker thread: opens the trace,
/// optimizes (and optionally executes) under it, records the request
/// latency histogram, and files a slow-log entry past the threshold.
#[allow(clippy::too_many_arguments)]
fn run_query(
    session: &crate::registry::Session,
    slowlog: &SlowLog,
    trace_id: String,
    oql: &str,
    wait: Duration,
    want_trace: bool,
    want_execute: bool,
    strategy: Option<search::Strategy>,
) -> Result<QueryAnswer, String> {
    obs::trace_begin(trace_id.clone());
    let wait_ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
    obs::trace_event("serve.admission_wait", 0, wait_ns);
    let prep = session.prepared();
    let started = Instant::now();
    // A per-request strategy override skips the plan cache both ways:
    // cached outcomes were computed under the session default.
    let result = match strategy {
        Some(s) if s != prep.strategy() => prep
            .optimize_with_strategy(oql, s)
            .map(|r| (r, sqo_core::CacheOutcome::Bypass)),
        _ => prep.optimize_cached(session.cache(), oql),
    };
    let outcome = match result {
        Ok((report, outcome)) => {
            let mut exec = None;
            let mut exec_err = None;
            if want_execute {
                if report.is_contradiction() {
                    // Step 4 of the paper: a refuted query needs no
                    // evaluation at all — zero answers, no plan.
                    exec = Some((None, None, 0));
                } else if let Some(db) = session.data() {
                    let db = db.lock().unwrap_or_else(|e| e.into_inner());
                    match report.best_plan(&db) {
                        Some((idx, eq, costs)) => match sqo_objdb::execute(&db, &eq.datalog) {
                            Ok((rows, _)) => {
                                exec = Some((Some(idx), Some(costs[idx]), rows.len()));
                            }
                            Err(e) => exec_err = Some(e.to_string()),
                        },
                        None => exec_err = Some("no equivalent plan to execute".to_string()),
                    }
                }
            }
            match exec_err {
                Some(e) => Err(e),
                None => Ok((report, outcome, exec)),
            }
        }
        Err(e) => Err(e.to_string()),
    };
    let elapsed = started.elapsed();
    let elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
    obs::record_hist("serve.request", elapsed_ns);
    let trace = obs::trace_end();
    let (report, outcome, exec) = outcome?;
    let explain = json::compact(&report.explain_json());
    if slowlog.is_slow(elapsed_ns) {
        let verdict = if report.is_contradiction() {
            "contradiction"
        } else {
            "equivalents"
        };
        slowlog.record(&SlowEntry {
            trace_id: &trace_id,
            session: session.name(),
            template_hash: report.datalog.canonical_template().hash,
            verdict,
            cache: outcome.label(),
            plan_cost: exec.and_then(|(_, cost, _)| cost),
            elapsed_ns,
            trace: trace.as_ref(),
            explain: &explain,
        });
    }
    Ok(QueryAnswer {
        report: explain,
        cache: outcome.label(),
        generation: prep.generation(),
        elapsed_us: elapsed.as_micros(),
        trace_id,
        trace_json: match (&trace, want_trace) {
            (Some(t), true) => Some(t.events_json()),
            _ => None,
        },
        exec,
    })
}
