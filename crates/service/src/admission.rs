//! Admission control: a bounded worker pool with load shedding.
//!
//! Requests enter a bounded FIFO queue drained by a fixed set of worker
//! threads. When the queue is full the submission is *shed* immediately
//! (the client gets `overloaded` instead of unbounded latency), and a
//! task whose deadline passed while it waited is dropped at dequeue
//! without running — dropping it tears down its reply channel, which the
//! waiting connection observes as `deadline_exceeded`.

use sqo_obs as obs;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued unit of work.
pub struct Task {
    /// Tasks not started by this instant are dropped unexecuted.
    pub deadline: Instant,
    /// When the task entered the queue; the elapsed time until a worker
    /// dequeues it is the admission wait, passed to `run`, added to the
    /// `serve.wait_ns` counter, and recorded into the `serve.wait`
    /// histogram — so shed decisions are explainable from metrics.
    pub submitted: Instant,
    /// The work itself (owns its reply channel); receives the admission
    /// wait it experienced.
    pub run: Box<dyn FnOnce(Duration) + Send + 'static>,
}

struct PoolState {
    queue: VecDeque<Task>,
    stopping: bool,
}

struct PoolInner {
    state: Mutex<PoolState>,
    wake: Condvar,
    capacity: usize,
    /// Highest queue depth observed at any submit (monotonic).
    depth_hwm: AtomicU64,
}

/// A fixed-size worker pool over a bounded queue.
pub struct Pool {
    inner: Arc<PoolInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawns `workers` threads draining a queue of at most `capacity`
    /// pending tasks.
    pub fn new(workers: usize, capacity: usize) -> Pool {
        let inner = Arc::new(PoolInner {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                stopping: false,
            }),
            wake: Condvar::new(),
            capacity: capacity.max(1),
            depth_hwm: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        Pool { inner, workers }
    }

    /// Enqueues a task, or sheds it (returning `false` and bumping the
    /// shed counter) when the queue is full or the pool is stopping.
    pub fn submit(&self, task: Task) -> bool {
        let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.stopping || state.queue.len() >= self.inner.capacity {
            obs::add(obs::Counter::ServeShed, 1);
            return false;
        }
        state.queue.push_back(task);
        let depth = state.queue.len() as u64;
        drop(state);
        self.inner.depth_hwm.fetch_max(depth, Ordering::Relaxed);
        self.inner.wake.notify_one();
        true
    }

    /// Tasks currently waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Highest queue depth ever observed (monotonic high-watermark).
    pub fn queue_depth_hwm(&self) -> u64 {
        self.inner.depth_hwm.load(Ordering::Relaxed)
    }

    /// Stops accepting work, drains nothing further, and joins the
    /// workers. Pending tasks are dropped (their reply channels close).
    pub fn shutdown(&mut self) {
        {
            let mut state = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            state.stopping = true;
            state.queue.clear();
        }
        self.inner.wake.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &PoolInner) {
    loop {
        let task = {
            let mut state = inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = state.queue.pop_front() {
                    break t;
                }
                if state.stopping {
                    // Flush before the closure returns: thread join does
                    // not wait for TLS destructors.
                    obs::flush_local();
                    return;
                }
                state = inner.wake.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        let wait = task.submitted.elapsed();
        let wait_ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
        obs::add(obs::Counter::ServeWaitNs, wait_ns);
        obs::record_hist("serve.wait", wait_ns);
        if Instant::now() > task.deadline {
            // Expired while queued: drop without running. The waiting
            // connection sees the reply channel close and reports
            // deadline_exceeded.
            drop(task);
            continue;
        }
        (task.run)(wait);
        // Make this worker's counters visible to concurrent metrics
        // readers (locals only merge globally on flush).
        obs::flush_local();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    fn far() -> Instant {
        Instant::now() + Duration::from_secs(60)
    }

    fn task(run: impl FnOnce(Duration) + Send + 'static) -> Task {
        Task {
            deadline: far(),
            submitted: Instant::now(),
            run: Box::new(run),
        }
    }

    #[test]
    fn executes_submitted_tasks() {
        let pool = Pool::new(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..4 {
            let tx = tx.clone();
            assert!(pool.submit(task(move |_| tx.send(i).unwrap())));
        }
        let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sheds_when_queue_full() {
        // One worker, blocked; capacity 1 → the second queued task is shed.
        let pool = Pool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        assert!(pool.submit(task(move |_| {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })));
        started_rx.recv().unwrap(); // worker is now busy
        assert!(pool.submit(task(|_| {}))); // fills the queue
        assert!(!pool.submit(task(|_| {}))); // shed
        release_tx.send(()).unwrap();
    }

    #[test]
    fn saturated_queue_reports_nonzero_wait_and_high_watermark() {
        // One blocked worker saturates a capacity-1 queue: the queued
        // task's admission wait spans the blocker's hold time, the third
        // submit sheds, and the high-watermark pins the saturation.
        let pool = Pool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        assert!(pool.submit(task(move |_| {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })));
        started_rx.recv().unwrap();
        let (wait_tx, wait_rx) = mpsc::channel::<Duration>();
        assert!(pool.submit(task(move |wait| wait_tx.send(wait).unwrap())));
        assert!(!pool.submit(task(|_| {}))); // shed while saturated
        assert_eq!(pool.queue_depth_hwm(), 1);
        std::thread::sleep(Duration::from_millis(20));
        release_tx.send(()).unwrap();
        let wait = wait_rx.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(
            wait >= Duration::from_millis(20),
            "queued task must report the admission wait it experienced, got {wait:?}"
        );
    }

    #[test]
    fn expired_tasks_are_dropped_unexecuted() {
        let pool = Pool::new(1, 4);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        assert!(pool.submit(task(move |_| {
            started_tx.send(()).unwrap();
            release_rx.recv().unwrap();
        })));
        started_rx.recv().unwrap();
        // Queued behind the blocker with an already-expired deadline; its
        // reply channel must close without the closure ever running.
        let (tx, rx) = mpsc::channel::<()>();
        assert!(pool.submit(Task {
            deadline: Instant::now() - Duration::from_millis(1),
            submitted: Instant::now(),
            run: Box::new(move |_| tx.send(()).unwrap()),
        }));
        release_tx.send(()).unwrap();
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)),
            Err(mpsc::RecvTimeoutError::Disconnected)
        );
    }
}
