//! Wire-level tests for the serving subsystem.
//!
//! Tests assert on obs counter deltas (process-global), so every test in
//! this binary serializes through one lock.

use sqo_core::SemanticOptimizer;
use sqo_obs as obs;
use sqo_service::json::{self, Json};
use sqo_service::{Server, ServerConfig, SessionRegistry, SessionSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const IC4: &str = "ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).";

/// Starts a university server on an ephemeral port; returns its address.
/// The server thread exits when a `shutdown` request arrives.
fn start_server(workers: usize, queue: usize) -> SocketAddr {
    let registry = Arc::new(SessionRegistry::new());
    registry
        .prepare("default", SessionSpec::University, Some(IC4))
        .unwrap();
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_capacity: queue,
            default_timeout_ms: 10_000,
            ..ServerConfig::default()
        },
        registry,
    )
    .unwrap();
    let addr = server.local_addr();
    std::thread::spawn(move || server.run().unwrap());
    addr
}

/// Sends each line on one connection and returns the parsed responses.
fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    lines
        .iter()
        .map(|l| {
            writeln!(stream, "{l}").unwrap();
            stream.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            json::parse(&resp).unwrap()
        })
        .collect()
}

fn shutdown(addr: SocketAddr) {
    let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#.to_string()]);
}

fn query_line(oql: &str) -> String {
    format!(r#"{{"op":"query","oql":{}}}"#, obs::json_string(oql))
}

/// The rewrite OQL strings of a wire `query` response.
fn wire_rewrites(resp: &Json) -> Vec<String> {
    resp.get("report")
        .and_then(|r| r.get("equivalents"))
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter(|e| e.get("changed").and_then(Json::as_bool) == Some(true))
        .filter_map(|e| e.get("oql").and_then(Json::as_str))
        .map(str::to_string)
        .collect()
}

#[test]
fn served_rewrites_match_the_one_shot_cli_path() {
    let _g = lock();
    let addr = start_server(2, 16);
    let oql = "select x.name from x in Person where x.age < 27";
    let resps = roundtrip(addr, &[query_line(oql), query_line(oql)]);
    shutdown(addr);

    assert_eq!(resps[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        resps[0].get("cache").and_then(Json::as_str),
        Some("miss"),
        "first sight of the template"
    );
    assert_eq!(
        resps[1].get("cache").and_then(Json::as_str),
        Some("hit"),
        "identical query is a warm hit"
    );

    // The one-shot path: same schema, same IC, fresh optimizer.
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text(IC4).unwrap();
    let report = opt.optimize(oql).unwrap();
    let mut local: Vec<String> = report
        .proper_rewrites()
        .map(|e| e.oql.to_string())
        .collect();
    local.sort();
    for resp in &resps {
        let mut served = wire_rewrites(resp);
        served.sort();
        assert_eq!(served, local, "served rewrites differ from one-shot CLI");
    }
    assert!(local.iter().any(|o| o.contains("x not in Faculty")));
}

#[test]
fn concurrent_mixed_load_hits_cache_and_sheds_nothing() {
    let _g = lock();
    let before = obs::snapshot();
    let addr = start_server(4, 64);
    // 32 concurrent clients: a parameterized family (warm after the
    // first), a second template, and a contradiction.
    let handles: Vec<_> = (0..32)
        .map(|i| {
            std::thread::spawn(move || {
                let oql = match i % 3 {
                    0 => format!("select x.name from x in Person where x.age < {}", 20 + i),
                    1 => "select s.name from s in Student".to_string(),
                    _ => format!(
                        "select f.name from f in Faculty where f.age < {}",
                        10 + i % 10
                    ),
                };
                let resp = roundtrip(addr, &[query_line(&oql)]).remove(0);
                assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "req {i}: {resp:?}");
                let verdict = resp
                    .get("report")
                    .and_then(|r| r.get("verdict"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string();
                if i % 3 == 2 {
                    assert_eq!(verdict, "contradiction", "faculty under 30 is empty");
                } else {
                    assert_eq!(verdict, "equivalents");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let metrics = roundtrip(addr, &[r#"{"op":"metrics"}"#.to_string()]).remove(0);
    shutdown(addr);
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
    assert!(metrics.get("queue_depth").and_then(Json::as_u64).is_some());
    let stats = metrics
        .get("stats")
        .and_then(|s| s.get("counters"))
        .unwrap();
    let total = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
    let delta = obs::snapshot().since(&before);
    assert_eq!(delta.counter(obs::Counter::ServeRequests), 32);
    assert_eq!(delta.counter(obs::Counter::ServeShed), 0);
    assert_eq!(delta.counter(obs::Counter::ServeDeadlineExceeded), 0);
    assert!(
        delta.counter(obs::Counter::PlanCacheHits) >= 1,
        "parameterized family must warm the cache"
    );
    // The wire metrics reply carries the same registry totals.
    assert!(total("serve.requests") >= 32);
    assert!(total("plan_cache.hits") >= 1);
}

#[test]
fn zero_timeout_is_deadline_exceeded() {
    let _g = lock();
    let before = obs::snapshot();
    let addr = start_server(1, 4);
    let line =
        r#"{"op":"query","oql":"select x.name from x in Person where x.age < 29","timeout_ms":0}"#
            .to_string();
    let resp = roundtrip(addr, &[line]).remove(0);
    shutdown(addr);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    let delta = obs::snapshot().since(&before);
    assert_eq!(delta.counter(obs::Counter::ServeDeadlineExceeded), 1);
}

#[test]
fn reload_ic_invalidates_cached_plans_over_the_wire() {
    let _g = lock();
    let before = obs::snapshot();
    let addr = start_server(2, 16);
    let q = query_line("select x.name from x in Person where x.age < 24");
    let reload = format!(
        r#"{{"op":"reload_ic","ic":{}}}"#,
        obs::json_string("ic IC4: Age >= 40 <- faculty(X, N, Age, S, R, Ad).")
    );
    let resps = roundtrip(addr, &[q.clone(), q.clone(), reload, q]);
    shutdown(addr);
    assert_eq!(resps[0].get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(resps[1].get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(resps[2].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(resps[2].get("generation").and_then(Json::as_u64), Some(1));
    // After the reload the old plan must not be served again.
    assert_eq!(resps[3].get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(resps[3].get("generation").and_then(Json::as_u64), Some(1));
    let delta = obs::snapshot().since(&before);
    assert!(delta.counter(obs::Counter::PlanCacheInvalidations) >= 1);
}

#[test]
fn protocol_errors_are_structured() {
    let _g = lock();
    let addr = start_server(1, 4);
    let resps = roundtrip(
        addr,
        &[
            "this is not json".to_string(),
            r#"{"op":"frobnicate"}"#.to_string(),
            r#"{"op":"query","session":"nope","oql":"select s.name from s in Student"}"#
                .to_string(),
            r#"{"op":"query"}"#.to_string(),
            r#"{"op":"ping"}"#.to_string(),
        ],
    );
    shutdown(addr);
    let kind = |r: &Json| {
        r.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    assert_eq!(kind(&resps[0]).as_deref(), Some("bad_request"));
    assert_eq!(kind(&resps[1]).as_deref(), Some("bad_request"));
    assert_eq!(kind(&resps[2]).as_deref(), Some("unknown_session"));
    assert_eq!(kind(&resps[3]).as_deref(), Some("bad_request"));
    assert_eq!(resps[4].get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn query_responses_carry_deterministic_trace_ids_and_events() {
    let _g = lock();
    let addr = start_server(1, 4);
    let q = "select x.name from x in Person where x.age < 27";
    let plain = query_line(q);
    let traced = format!(
        r#"{{"op":"query","oql":{},"trace":true}}"#,
        obs::json_string(q)
    );
    let resps = roundtrip(addr, &[plain, traced]);
    shutdown(addr);
    // One worker, one connection: the sequence is fully deterministic.
    assert_eq!(
        resps[0].get("trace_id").and_then(Json::as_str),
        Some("default:0:0")
    );
    assert_eq!(
        resps[1].get("trace_id").and_then(Json::as_str),
        Some("default:0:1")
    );
    assert!(resps[0].get("trace").is_none(), "trace only when requested");
    let events = resps[1].get("trace").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names[0], "serve.admission_wait");
    assert!(names.contains(&"cache.lookup"), "events: {names:?}");
    assert!(names.contains(&"pipeline.optimize"), "events: {names:?}");
    // Events carry durations and (for real spans) counter deltas.
    for e in events {
        assert!(e.get("dur_ns").and_then(Json::as_u64).is_some());
        assert!(e.get("start_ns").and_then(Json::as_u64).is_some());
        assert!(e.get("counters").is_some());
    }
}

#[test]
fn metrics_reports_hist_quantiles_queue_hwm_and_wait() {
    let _g = lock();
    let addr = start_server(2, 16);
    let q = query_line("select x.name from x in Person where x.age < 28");
    let resps = roundtrip(addr, &[q.clone(), q, r#"{"op":"metrics"}"#.to_string()]);
    shutdown(addr);
    let metrics = &resps[2];
    assert!(metrics
        .get("queue_depth_hwm")
        .and_then(Json::as_u64)
        .is_some());
    let hist = metrics.get("hist").unwrap();
    // Request-level series plus every pinned stage, quantiles and all.
    let series = hist.get("serve.request").unwrap();
    assert!(series.get("count").and_then(Json::as_u64).unwrap() >= 2);
    for p in ["p50", "p90", "p99", "max"] {
        assert!(
            series.get(p).and_then(Json::as_u64).unwrap() > 0,
            "serve.request {p} must be a positive sample"
        );
    }
    for pinned in ["stage/cache.lookup", "stage/objdb.execute", "serve.wait"] {
        assert!(hist.get(pinned).is_some(), "metrics hist must pin {pinned}");
    }
    assert!(
        hist.get("stage/cache.lookup")
            .and_then(|s| s.get("count"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 2
    );
    // The executor series is pinned at bind time even before any plan
    // runs; histograms are process-global, so another test in this
    // binary may already have fed it. Either way the summary is
    // well-formed: empty ⇒ null quantiles (never a panic), else numbers.
    let exec_series = hist.get("stage/objdb.execute").unwrap();
    if exec_series.get("count").and_then(Json::as_u64) == Some(0) {
        assert_eq!(exec_series.get("p99"), Some(&Json::Null));
    } else {
        assert!(exec_series.get("p99").and_then(Json::as_u64).is_some());
    }
    // Admission wait is accounted both as a counter and a histogram.
    let counters = metrics
        .get("stats")
        .and_then(|s| s.get("counters"))
        .unwrap();
    assert!(counters
        .get("serve.wait_ns")
        .and_then(Json::as_u64)
        .is_some());
    assert!(
        hist.get("serve.wait")
            .and_then(|s| s.get("count"))
            .and_then(Json::as_u64)
            .unwrap()
            >= 2
    );
}

#[test]
fn slow_queries_land_in_the_slowlog() {
    let _g = lock();
    let before = obs::snapshot();
    let registry = Arc::new(SessionRegistry::new());
    registry
        .prepare("default", SessionSpec::University, Some(IC4))
        .unwrap();
    // Threshold 0: every request qualifies, making the test deterministic.
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_capacity: 4,
            slow_ms: 0,
            slowlog_capacity: 2,
            ..ServerConfig::default()
        },
        registry,
    )
    .unwrap();
    let addr = server.local_addr();
    std::thread::spawn(move || server.run().unwrap());
    let resps = roundtrip(
        addr,
        &[
            query_line("select x.name from x in Person where x.age < 21"),
            query_line("select x.name from x in Person where x.age < 22"),
            query_line("select x.name from x in Person where x.age < 23"),
            r#"{"op":"slowlog"}"#.to_string(),
        ],
    );
    shutdown(addr);
    let slowlog = &resps[3];
    assert_eq!(slowlog.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        slowlog.get("slow_threshold_ms").and_then(Json::as_u64),
        Some(0)
    );
    // Ring of 2: the oldest of the three entries was evicted.
    assert_eq!(slowlog.get("count").and_then(Json::as_u64), Some(2));
    let entries = slowlog.get("entries").and_then(Json::as_arr).unwrap();
    assert_eq!(entries.len(), 2);
    assert_eq!(
        entries[0].get("trace_id").and_then(Json::as_str),
        Some("default:0:1")
    );
    for e in entries {
        assert_eq!(e.get("verdict").and_then(Json::as_str), Some("equivalents"));
        assert_eq!(e.get("cache").and_then(Json::as_str), Some("hit"));
        assert!(e.get("template").and_then(Json::as_str).is_some());
        assert!(e.get("elapsed_ns").and_then(Json::as_u64).is_some());
        // Per-stage durations from the trace, and the full report.
        assert!(e
            .get("stages")
            .and_then(|s| s.get("pipeline.optimize"))
            .is_some());
        assert!(e
            .get("explain")
            .and_then(|r| r.get("verdict"))
            .and_then(Json::as_str)
            .is_some());
    }
    let delta = obs::snapshot().since(&before);
    assert_eq!(delta.counter(obs::Counter::ServeSlowQueries), 3);
}

#[test]
fn execute_runs_the_chosen_plan_against_bound_data() {
    let _g = lock();
    let addr = start_server(2, 16);
    let exec_line = |oql: &str| {
        format!(
            r#"{{"op":"query","session":"data","oql":{},"execute":true,"trace":true}}"#,
            obs::json_string(oql)
        )
    };
    let resps = roundtrip(
        addr,
        &[
            // Executing without bound data is a structured error.
            format!(
                r#"{{"op":"query","oql":{},"execute":true}}"#,
                obs::json_string("select s.name from s in Student")
            ),
            format!(
                r#"{{"op":"prepare","session":"data","university":true,"data":true,"ic":{}}}"#,
                obs::json_string(IC4)
            ),
            exec_line("select s.name from s in Student"),
            exec_line("select f.name from f in Faculty where f.age < 25"),
            r#"{"op":"metrics"}"#.to_string(),
        ],
    );
    shutdown(addr);
    assert_eq!(
        resps[0]
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_request")
    );
    assert_eq!(resps[1].get("ok"), Some(&Json::Bool(true)));
    let executed = &resps[2];
    assert_eq!(executed.get("ok"), Some(&Json::Bool(true)));
    assert!(
        executed.get("answers").and_then(Json::as_u64).unwrap() > 0,
        "the generated university base has students: {executed:?}"
    );
    assert!(executed.get("plan_index").and_then(Json::as_u64).is_some());
    assert!(executed.get("plan_cost").and_then(Json::as_f64).unwrap() > 0.0);
    let names: Vec<&str> = executed
        .get("trace")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    assert!(
        names.contains(&"objdb.execute"),
        "execution must appear in the trace: {names:?}"
    );
    // Contradiction: step 4 skips evaluation — zero answers, no plan.
    let refuted = &resps[3];
    assert_eq!(
        refuted
            .get("report")
            .and_then(|r| r.get("verdict"))
            .and_then(Json::as_str),
        Some("contradiction")
    );
    assert_eq!(refuted.get("answers").and_then(Json::as_u64), Some(0));
    assert_eq!(refuted.get("plan_index"), Some(&Json::Null));
    assert_eq!(refuted.get("plan_cost"), Some(&Json::Null));
    // Real executions feed the stage/objdb.execute quantiles.
    let hist = resps[4].get("hist").unwrap();
    assert!(
        hist.get("stage/objdb.execute")
            .and_then(|s| s.get("p50"))
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
}

#[test]
fn metrics_wire_keys_are_sorted_and_deterministic() {
    let _g = lock();
    let addr = start_server(1, 4);
    let q = query_line("select x.name from x in Person where x.age < 26");
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut raw = |line: &str| {
        writeln!(stream, "{line}").unwrap();
        stream.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        resp
    };
    let _ = raw(&q);
    let first = raw(r#"{"op":"metrics"}"#);
    let second = raw(r#"{"op":"metrics"}"#);
    shutdown(addr);
    // Serialized key order (not post-parse order) must be sorted: scan
    // the raw wire text for the counter and hist sections.
    let key_positions = |text: &str, keys: &[&str]| -> Vec<usize> {
        keys.iter()
            .map(|k| {
                text.find(&format!("\"{k}\""))
                    .unwrap_or_else(|| panic!("{k} missing"))
            })
            .collect()
    };
    let counters = key_positions(
        &first,
        &[
            "exec.scan",
            "plan_cache.hits",
            "serve.requests",
            "unify.attempts",
        ],
    );
    assert!(counters.windows(2).all(|w| w[0] < w[1]), "counters sorted");
    let hists = key_positions(
        &first,
        &[
            "serve.request",
            "serve.wait",
            "stage/cache.lookup",
            "stage/objdb.execute",
        ],
    );
    assert!(hists.windows(2).all(|w| w[0] < w[1]), "hist keys sorted");
    // Two consecutive metrics snapshots expose the identical key sets in
    // the identical order (values may differ).
    let keys_of = |text: &str| -> Vec<String> {
        let mut keys = Vec::new();
        let bytes = text.as_bytes();
        let mut i = 0;
        while let Some(start) = text[i..].find('"').map(|p| i + p) {
            let end = match text[start + 1..].find('"').map(|p| start + 1 + p) {
                Some(e) => e,
                None => break,
            };
            if bytes.get(end + 1) == Some(&b':') {
                keys.push(text[start + 1..end].to_string());
            }
            i = end + 1;
        }
        keys
    };
    assert_eq!(keys_of(&first), keys_of(&second));
}

#[test]
fn prepare_over_the_wire_creates_sessions() {
    let _g = lock();
    let addr = start_server(1, 4);
    let resps = roundtrip(
        addr,
        &[
            format!(
                r#"{{"op":"prepare","session":"second","university":true,"ic":{}}}"#,
                obs::json_string(IC4)
            ),
            r#"{"op":"query","session":"second","oql":"select f.name from f in Faculty where f.age < 20"}"#
                .to_string(),
            r#"{"op":"metrics"}"#.to_string(),
        ],
    );
    shutdown(addr);
    assert_eq!(resps[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        resps[1]
            .get("report")
            .and_then(|r| r.get("verdict"))
            .and_then(Json::as_str),
        Some("contradiction")
    );
    let sessions = resps[2].get("sessions").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = sessions
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, vec!["default", "second"]);
}

/// Starts a server whose default session is bound to a durable store
/// opened (or recovered) from `dir`.
fn start_store_server(dir: &std::path::Path) -> SocketAddr {
    let registry = Arc::new(SessionRegistry::new());
    registry
        .prepare("default", SessionSpec::University, Some(IC4))
        .unwrap();
    let mut db = sqo_objdb::ObjectDb::open(sqo_odl::fixtures::university_schema(), dir, 4).unwrap();
    sqo_objdb::register_university_methods(&mut db).unwrap();
    registry.get("default").unwrap().attach_db(db);
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 16,
            ..ServerConfig::default()
        },
        registry,
    )
    .unwrap();
    let addr = server.local_addr();
    std::thread::spawn(move || server.run().unwrap());
    addr
}

#[test]
fn store_backed_writes_persist_across_server_restarts() {
    let _g = lock();
    let dir = std::env::temp_dir().join(format!("sqo_serve_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // Session 1: write over the wire, snapshot, keep writing (WAL tail).
    let addr = start_store_server(&dir);
    let resps = roundtrip(
        addr,
        &[
            r#"{"op":"create","class":"Faculty","attrs":{"name":"wired","age":44,"salary":90000}}"#
                .to_string(),
            r#"{"op":"create","class":"Student","attrs":{"name":"pupil","age":22}}"#.to_string(),
            r#"{"op":"create","class":"Section","attrs":{"number":"s1"}}"#.to_string(),
            r#"{"op":"persist"}"#.to_string(),
            r#"{"op":"create","class":"Student","attrs":{"name":"tail","age":25}}"#.to_string(),
            r#"{"op":"query","oql":"select x.name from x in Student","execute":true}"#.to_string(),
            r#"{"op":"metrics"}"#.to_string(),
        ],
    );
    shutdown(addr);
    for (i, r) in resps.iter().enumerate() {
        assert_eq!(r.get("ok"), Some(&Json::Bool(true)), "request {i}: {r:?}");
    }
    let student_oid = resps[1].get("oid").and_then(Json::as_u64).unwrap();
    let section_oid = resps[2].get("oid").and_then(Json::as_u64).unwrap();
    assert!(
        resps[3]
            .get("snapshot_bytes")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );
    let answers_before = resps[5].get("answers").and_then(Json::as_u64).unwrap();
    assert_eq!(answers_before, 2);
    let sessions = resps[6].get("sessions").and_then(Json::as_arr).unwrap();
    assert!(
        sessions[0]
            .get("store_generation")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );

    // Session 2: recover from the same directory — snapshot plus WAL
    // tail — and verify the same answers come back, then link against
    // recovered OIDs.
    let addr = start_store_server(&dir);
    let resps = roundtrip(
        addr,
        &[
            r#"{"op":"query","oql":"select x.name from x in Student","execute":true}"#.to_string(),
            format!(r#"{{"op":"link","from":{student_oid},"rel":"takes","to":{section_oid}}}"#),
            r#"{"op":"create","class":"Person","attrs":{"name":"late"}}"#.to_string(),
        ],
    );
    shutdown(addr);
    assert_eq!(resps[0].get("answers").and_then(Json::as_u64), Some(2));
    assert_eq!(
        resps[1].get("ok"),
        Some(&Json::Bool(true)),
        "{:?}",
        resps[1]
    );
    // Fresh OIDs allocate past everything recovered.
    let late = resps[2].get("oid").and_then(Json::as_u64).unwrap();
    assert!(late > section_oid);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn write_ops_without_data_or_store_are_clean_errors() {
    let _g = lock();
    let addr = start_server(1, 4);
    let resps = roundtrip(
        addr,
        &[
            r#"{"op":"create","class":"Person"}"#.to_string(),
            r#"{"op":"persist"}"#.to_string(),
            // In-memory data attached via prepare: create works,
            // persist still needs a durable store.
            r#"{"op":"prepare","session":"mem","university":true,"data":true}"#.to_string(),
            r#"{"op":"create","session":"mem","class":"Person","attrs":{"name":"m"}}"#.to_string(),
            r#"{"op":"persist","session":"mem"}"#.to_string(),
        ],
    );
    shutdown(addr);
    for i in [0, 1] {
        assert_eq!(
            resps[i].get("ok"),
            Some(&Json::Bool(false)),
            "{:?}",
            resps[i]
        );
        assert_eq!(
            resps[i]
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("bad_request")
        );
    }
    assert_eq!(
        resps[3].get("ok"),
        Some(&Json::Bool(true)),
        "{:?}",
        resps[3]
    );
    assert_eq!(
        resps[3].get("store_generation").and_then(Json::as_u64),
        Some(0)
    );
    assert_eq!(
        resps[4].get("ok"),
        Some(&Json::Bool(false)),
        "{:?}",
        resps[4]
    );
}
