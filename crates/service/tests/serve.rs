//! Wire-level tests for the serving subsystem.
//!
//! Tests assert on obs counter deltas (process-global), so every test in
//! this binary serializes through one lock.

use sqo_core::SemanticOptimizer;
use sqo_obs as obs;
use sqo_service::json::{self, Json};
use sqo_service::{Server, ServerConfig, SessionRegistry, SessionSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const IC4: &str = "ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).";

/// Starts a university server on an ephemeral port; returns its address.
/// The server thread exits when a `shutdown` request arrives.
fn start_server(workers: usize, queue: usize) -> SocketAddr {
    let registry = Arc::new(SessionRegistry::new());
    registry
        .prepare("default", SessionSpec::University, Some(IC4))
        .unwrap();
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers,
            queue_capacity: queue,
            default_timeout_ms: 10_000,
        },
        registry,
    )
    .unwrap();
    let addr = server.local_addr();
    std::thread::spawn(move || server.run().unwrap());
    addr
}

/// Sends each line on one connection and returns the parsed responses.
fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Json> {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    lines
        .iter()
        .map(|l| {
            writeln!(stream, "{l}").unwrap();
            stream.flush().unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            json::parse(&resp).unwrap()
        })
        .collect()
}

fn shutdown(addr: SocketAddr) {
    let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#.to_string()]);
}

fn query_line(oql: &str) -> String {
    format!(r#"{{"op":"query","oql":{}}}"#, obs::json_string(oql))
}

/// The rewrite OQL strings of a wire `query` response.
fn wire_rewrites(resp: &Json) -> Vec<String> {
    resp.get("report")
        .and_then(|r| r.get("equivalents"))
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter(|e| e.get("changed").and_then(Json::as_bool) == Some(true))
        .filter_map(|e| e.get("oql").and_then(Json::as_str))
        .map(str::to_string)
        .collect()
}

#[test]
fn served_rewrites_match_the_one_shot_cli_path() {
    let _g = lock();
    let addr = start_server(2, 16);
    let oql = "select x.name from x in Person where x.age < 27";
    let resps = roundtrip(addr, &[query_line(oql), query_line(oql)]);
    shutdown(addr);

    assert_eq!(resps[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        resps[0].get("cache").and_then(Json::as_str),
        Some("miss"),
        "first sight of the template"
    );
    assert_eq!(
        resps[1].get("cache").and_then(Json::as_str),
        Some("hit"),
        "identical query is a warm hit"
    );

    // The one-shot path: same schema, same IC, fresh optimizer.
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text(IC4).unwrap();
    let report = opt.optimize(oql).unwrap();
    let mut local: Vec<String> = report
        .proper_rewrites()
        .map(|e| e.oql.to_string())
        .collect();
    local.sort();
    for resp in &resps {
        let mut served = wire_rewrites(resp);
        served.sort();
        assert_eq!(served, local, "served rewrites differ from one-shot CLI");
    }
    assert!(local.iter().any(|o| o.contains("x not in Faculty")));
}

#[test]
fn concurrent_mixed_load_hits_cache_and_sheds_nothing() {
    let _g = lock();
    let before = obs::snapshot();
    let addr = start_server(4, 64);
    // 32 concurrent clients: a parameterized family (warm after the
    // first), a second template, and a contradiction.
    let handles: Vec<_> = (0..32)
        .map(|i| {
            std::thread::spawn(move || {
                let oql = match i % 3 {
                    0 => format!("select x.name from x in Person where x.age < {}", 20 + i),
                    1 => "select s.name from s in Student".to_string(),
                    _ => format!(
                        "select f.name from f in Faculty where f.age < {}",
                        10 + i % 10
                    ),
                };
                let resp = roundtrip(addr, &[query_line(&oql)]).remove(0);
                assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "req {i}: {resp:?}");
                let verdict = resp
                    .get("report")
                    .and_then(|r| r.get("verdict"))
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_string();
                if i % 3 == 2 {
                    assert_eq!(verdict, "contradiction", "faculty under 30 is empty");
                } else {
                    assert_eq!(verdict, "equivalents");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let metrics = roundtrip(addr, &[r#"{"op":"metrics"}"#.to_string()]).remove(0);
    shutdown(addr);
    assert_eq!(metrics.get("ok"), Some(&Json::Bool(true)));
    assert!(metrics.get("queue_depth").and_then(Json::as_u64).is_some());
    let stats = metrics
        .get("stats")
        .and_then(|s| s.get("counters"))
        .unwrap();
    let total = |k: &str| stats.get(k).and_then(Json::as_u64).unwrap_or(0);
    let delta = obs::snapshot().since(&before);
    assert_eq!(delta.counter(obs::Counter::ServeRequests), 32);
    assert_eq!(delta.counter(obs::Counter::ServeShed), 0);
    assert_eq!(delta.counter(obs::Counter::ServeDeadlineExceeded), 0);
    assert!(
        delta.counter(obs::Counter::PlanCacheHits) >= 1,
        "parameterized family must warm the cache"
    );
    // The wire metrics reply carries the same registry totals.
    assert!(total("serve.requests") >= 32);
    assert!(total("plan_cache.hits") >= 1);
}

#[test]
fn zero_timeout_is_deadline_exceeded() {
    let _g = lock();
    let before = obs::snapshot();
    let addr = start_server(1, 4);
    let line =
        r#"{"op":"query","oql":"select x.name from x in Person where x.age < 29","timeout_ms":0}"#
            .to_string();
    let resp = roundtrip(addr, &[line]).remove(0);
    shutdown(addr);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        resp.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    let delta = obs::snapshot().since(&before);
    assert_eq!(delta.counter(obs::Counter::ServeDeadlineExceeded), 1);
}

#[test]
fn reload_ic_invalidates_cached_plans_over_the_wire() {
    let _g = lock();
    let before = obs::snapshot();
    let addr = start_server(2, 16);
    let q = query_line("select x.name from x in Person where x.age < 24");
    let reload = format!(
        r#"{{"op":"reload_ic","ic":{}}}"#,
        obs::json_string("ic IC4: Age >= 40 <- faculty(X, N, Age, S, R, Ad).")
    );
    let resps = roundtrip(addr, &[q.clone(), q.clone(), reload, q]);
    shutdown(addr);
    assert_eq!(resps[0].get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(resps[1].get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(resps[2].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(resps[2].get("generation").and_then(Json::as_u64), Some(1));
    // After the reload the old plan must not be served again.
    assert_eq!(resps[3].get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(resps[3].get("generation").and_then(Json::as_u64), Some(1));
    let delta = obs::snapshot().since(&before);
    assert!(delta.counter(obs::Counter::PlanCacheInvalidations) >= 1);
}

#[test]
fn protocol_errors_are_structured() {
    let _g = lock();
    let addr = start_server(1, 4);
    let resps = roundtrip(
        addr,
        &[
            "this is not json".to_string(),
            r#"{"op":"frobnicate"}"#.to_string(),
            r#"{"op":"query","session":"nope","oql":"select s.name from s in Student"}"#
                .to_string(),
            r#"{"op":"query"}"#.to_string(),
            r#"{"op":"ping"}"#.to_string(),
        ],
    );
    shutdown(addr);
    let kind = |r: &Json| {
        r.get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str)
            .map(str::to_string)
    };
    assert_eq!(kind(&resps[0]).as_deref(), Some("bad_request"));
    assert_eq!(kind(&resps[1]).as_deref(), Some("bad_request"));
    assert_eq!(kind(&resps[2]).as_deref(), Some("unknown_session"));
    assert_eq!(kind(&resps[3]).as_deref(), Some("bad_request"));
    assert_eq!(resps[4].get("ok"), Some(&Json::Bool(true)));
}

#[test]
fn prepare_over_the_wire_creates_sessions() {
    let _g = lock();
    let addr = start_server(1, 4);
    let resps = roundtrip(
        addr,
        &[
            format!(
                r#"{{"op":"prepare","session":"second","university":true,"ic":{}}}"#,
                obs::json_string(IC4)
            ),
            r#"{"op":"query","session":"second","oql":"select f.name from f in Faculty where f.age < 20"}"#
                .to_string(),
            r#"{"op":"metrics"}"#.to_string(),
        ],
    );
    shutdown(addr);
    assert_eq!(resps[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(
        resps[1]
            .get("report")
            .and_then(|r| r.get("verdict"))
            .and_then(Json::as_str),
        Some("contradiction")
    );
    let sessions = resps[2].get("sessions").and_then(Json::as_arr).unwrap();
    let names: Vec<&str> = sessions
        .iter()
        .filter_map(|s| s.get("name").and_then(Json::as_str))
        .collect();
    assert_eq!(names, vec!["default", "second"]);
}
