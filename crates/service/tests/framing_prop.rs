//! Property tests for the incremental JSON-lines framer: the transport's
//! byte-chunking must be invisible. Any split of a request stream —
//! boundaries mid-line, mid-UTF-8-sequence, mid-escape, or on empty
//! chunks — reassembles to exactly the frame sequence of whole-stream
//! delivery.

use proptest::prelude::*;
use sqo_service::framing::LineFramer;

/// Line fragments chosen to make interesting boundaries likely: ASCII
/// JSON punctuation, multi-byte UTF-8 (2- and 3-byte sequences), and
/// escape-looking text.
fn fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        3 => Just("{\"op\":\"ping\"}".to_string()),
        3 => Just("x.age < 30".to_string()),
        2 => Just("é".to_string()),
        2 => Just("✓".to_string()),
        2 => Just("\\\"escaped\\\"".to_string()),
        1 => Just("{}".to_string()),
        1 => Just(" ".to_string()),
    ]
}

fn line() -> impl Strategy<Value = String> {
    prop::collection::vec(fragment(), 1..5).prop_map(|parts| parts.concat())
}

fn drain(f: &mut LineFramer) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while let Some(frame) = f.next_frame() {
        out.push(frame);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Chunked delivery yields the same frames as one-shot delivery,
    /// for arbitrary chunk sizes (including empty and byte-at-a-time).
    #[test]
    fn chunking_is_invisible(
        lines in prop::collection::vec(line(), 1..8),
        sizes in prop::collection::vec(0usize..9, 1..32),
    ) {
        // Zero-length chunks are a valid (and tested) delivery, but an
        // all-zero schedule would never advance the stream.
        let mut sizes = sizes;
        if sizes.iter().all(|&s| s == 0) {
            sizes.push(1);
        }
        let mut stream = Vec::new();
        for l in &lines {
            stream.extend_from_slice(l.as_bytes());
            stream.push(b'\n');
        }

        let mut whole = LineFramer::new(1 << 20);
        whole.push(&stream).unwrap();
        let expected = drain(&mut whole);
        prop_assert_eq!(expected.len(), lines.len());

        let mut chunked = LineFramer::new(1 << 20);
        let mut got = Vec::new();
        let mut pos = 0;
        let mut i = 0;
        while pos < stream.len() {
            let take = sizes[i % sizes.len()].min(stream.len() - pos);
            i += 1;
            chunked.push(&stream[pos..pos + take]).unwrap();
            pos += take;
            // Drain eagerly, as the event loop does per wake-up: frames
            // must come out identical no matter when they are drained.
            got.extend(drain(&mut chunked));
        }
        got.extend(drain(&mut chunked));
        prop_assert_eq!(got, expected);
        prop_assert_eq!(chunked.buffered(), 0);
    }

    /// A stream cut at every single byte boundary (the exhaustive
    /// two-chunk case, including mid-UTF-8) reassembles losslessly.
    #[test]
    fn every_two_chunk_split_reassembles(lines in prop::collection::vec(line(), 1..4)) {
        let mut stream = Vec::new();
        for l in &lines {
            stream.extend_from_slice(l.as_bytes());
            stream.push(b'\n');
        }
        let mut whole = LineFramer::new(1 << 20);
        whole.push(&stream).unwrap();
        let expected = drain(&mut whole);

        for cut in 0..=stream.len() {
            let mut f = LineFramer::new(1 << 20);
            f.push(&stream[..cut]).unwrap();
            let mut got = drain(&mut f);
            f.push(&stream[cut..]).unwrap();
            got.extend(drain(&mut f));
            prop_assert_eq!(&got, &expected, "cut at byte {}", cut);
        }
    }

    /// The tail-length accounting (which enforces the per-line memory
    /// bound) is chunking-independent too.
    #[test]
    fn oversize_detection_is_chunking_independent(
        line in line(),
        sizes in prop::collection::vec(1usize..5, 1..16),
    ) {
        let limit = 16;
        let fits = line.len() <= limit;
        let mut f = LineFramer::new(limit);
        let bytes = line.as_bytes();
        let mut pos = 0;
        let mut i = 0;
        let mut failed = false;
        while pos < bytes.len() && !failed {
            let take = sizes[i % sizes.len()].min(bytes.len() - pos);
            i += 1;
            failed = f.push(&bytes[pos..pos + take]).is_err();
            pos += take;
        }
        prop_assert_eq!(!failed, fits, "line of {} bytes vs limit {}", line.len(), limit);
    }
}
