//! Event-loop-mode wire tests: pipelined batching, adversarial
//! connections, and counter equivalence against the threaded ablation
//! mode.
//!
//! Tests assert on obs counter deltas (process-global), so every test in
//! this binary serializes through one lock.

use sqo_obs as obs;
use sqo_service::json::{self, Json};
use sqo_service::{ServeMode, Server, ServerConfig, SessionRegistry, SessionSpec};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const IC4: &str = "ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).";

fn start_server(cfg: ServerConfig) -> SocketAddr {
    let registry = Arc::new(SessionRegistry::new());
    registry
        .prepare("default", SessionSpec::University, Some(IC4))
        .unwrap();
    let server = Server::bind(cfg, registry).unwrap();
    let addr = server.local_addr();
    std::thread::spawn(move || server.run().unwrap());
    addr
}

fn event_loop_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        mode: ServeMode::EventLoop,
        ..ServerConfig::default()
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

/// Sends each line on one connection, one at a time, returning the
/// parsed responses.
fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Json> {
    let mut stream = connect(addr);
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    lines
        .iter()
        .map(|l| {
            writeln!(stream, "{l}").unwrap();
            stream.flush().unwrap();
            read_response(&mut reader)
        })
        .collect()
}

fn read_response(reader: &mut impl BufRead) -> Json {
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    assert!(!resp.is_empty(), "connection closed without a response");
    json::parse(&resp).unwrap()
}

fn shutdown(addr: SocketAddr) {
    let _ = roundtrip(addr, &[r#"{"op":"shutdown"}"#.to_string()]);
}

fn query_line(oql: &str) -> String {
    format!(r#"{{"op":"query","oql":{}}}"#, obs::json_string(oql))
}

/// Drops the per-request volatile fields (elapsed time, stage timings)
/// so two deliveries of the same request can be compared byte-for-byte
/// on everything that matters.
fn normalized(resp: &Json) -> Json {
    fn strip(j: &Json, drop_keys: &[&str]) -> Json {
        match j {
            Json::Obj(m) => Json::Obj(
                m.iter()
                    .filter(|(k, _)| !drop_keys.contains(&k.as_str()))
                    .map(|(k, v)| (k.clone(), strip(v, drop_keys)))
                    .collect(),
            ),
            Json::Arr(items) => Json::Arr(items.iter().map(|i| strip(i, drop_keys)).collect()),
            other => other.clone(),
        }
    }
    strip(resp, &["elapsed_us", "stats"])
}

/// Satellite: N requests written in one TCP segment come back as N
/// in-order responses with payloads identical to one-at-a-time
/// delivery.
#[test]
fn pipelined_batch_matches_one_at_a_time() {
    let _g = lock();
    // One worker makes the cache-outcome sequence (miss, hit, hit, ...)
    // deterministic regardless of how requests are batched.
    let single_worker = || ServerConfig {
        workers: 1,
        ..event_loop_config()
    };

    let lines: Vec<String> = (0..8)
        .map(|i| {
            query_line(&format!(
                "select x.name from x in Person where x.age < {}",
                20 + i
            ))
        })
        .chain([r#"{"op":"ping"}"#.to_string()])
        .collect();

    // Reference: fresh server, one request at a time.
    let addr = start_server(single_worker());
    let one_at_a_time = roundtrip(addr, &lines);
    shutdown(addr);

    // Pipelined: a second fresh server (same trace-id sequence), every
    // request in a single write.
    let addr = start_server(single_worker());
    let mut stream = connect(addr);
    let batch: String = lines.iter().map(|l| format!("{l}\n")).collect();
    stream.write_all(batch.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let pipelined: Vec<Json> = lines.iter().map(|_| read_response(&mut reader)).collect();
    shutdown(addr);

    assert_eq!(pipelined.len(), one_at_a_time.len());
    for (i, (p, o)) in pipelined.iter().zip(&one_at_a_time).enumerate() {
        assert_eq!(
            normalized(p),
            normalized(o),
            "response {i} differs between pipelined and sequential delivery"
        );
    }
    // In-order: the deterministic trace ids must come back 0..N.
    for (i, p) in pipelined.iter().take(8).enumerate() {
        assert_eq!(
            p.get("trace_id").and_then(Json::as_str),
            Some(format!("default:0:{i}").as_str()),
            "response {i} out of order"
        );
    }
}

/// Satellite: a slow-loris connection dribbling a request byte-by-byte
/// holds framer state, never a worker — a fast client on the same
/// server stays snappy, and the dribbled request still gets its answer.
#[test]
fn slow_loris_never_stalls_fast_clients() {
    let _g = lock();
    let addr = start_server(ServerConfig {
        workers: 2,
        ..event_loop_config()
    });

    let line = query_line("select x.name from x in Person where x.age < 24");
    let bytes = format!("{line}\n").into_bytes();
    let (head, tail) = bytes.split_at(bytes.len() / 2);

    let mut slow = connect(addr);
    slow.write_all(head).unwrap();
    slow.flush().unwrap();

    // With the threaded seed this held one worker hostage per loris; on
    // the event loop it must cost nothing. 32 full round trips while
    // the frame dangles.
    let started = Instant::now();
    for _ in 0..32 {
        let resps = roundtrip(addr, &[r#"{"op":"ping"}"#.to_string()]);
        assert_eq!(resps[0].get("ok"), Some(&Json::Bool(true)));
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "fast clients stalled behind a slow-loris peer"
    );

    // The dribble completes and is answered normally.
    slow.write_all(tail).unwrap();
    slow.flush().unwrap();
    let resp = read_response(&mut BufReader::new(slow.try_clone().unwrap()));
    assert_eq!(resp.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(resp.get("op").and_then(Json::as_str), Some("query"));
    shutdown(addr);
}

/// Satellite: an endless unterminated frame is cut off at the
/// configured bound with a structured error; memory stays bounded and
/// other connections are unaffected.
#[test]
fn oversized_frames_get_a_bounded_error() {
    let _g = lock();
    let addr = start_server(ServerConfig {
        max_frame_bytes: 4096,
        ..event_loop_config()
    });

    let mut evil = connect(addr);
    let blob = vec![b'a'; 64 * 1024]; // 16x the limit, no newline ever
                                      // The server may close mid-write once the limit trips; that broken
                                      // pipe is the bounded-memory path working.
    let _ = evil.write_all(&blob);
    let _ = evil.flush();
    let mut resp = String::new();
    let n = BufReader::new(evil.try_clone().unwrap())
        .read_line(&mut resp)
        .unwrap_or(0);
    if n > 0 {
        let parsed = json::parse(&resp).unwrap();
        assert_eq!(parsed.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            parsed
                .get("error")
                .and_then(|e| e.get("kind"))
                .and_then(Json::as_str),
            Some("bad_request")
        );
        let msg = parsed
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(msg.contains("4096"), "error names the bound: {msg}");
        // And the connection is closed after the error line.
        let mut rest = Vec::new();
        let _ = evil.read_to_end(&mut rest);
        assert!(rest.is_empty());
    }

    // A well-behaved client on the same server is unaffected.
    let resps = roundtrip(
        addr,
        &[query_line(
            "select x.name from x in Person where x.age < 22",
        )],
    );
    assert_eq!(resps[0].get("ok"), Some(&Json::Bool(true)));
    shutdown(addr);
}

/// Satellite: garbage bytes — non-JSON text and invalid UTF-8 — each
/// get a structured `bad_request` without harming the server.
#[test]
fn garbage_bytes_get_structured_errors() {
    let _g = lock();
    let addr = start_server(event_loop_config());

    // Valid UTF-8, invalid JSON: an error response, connection stays up.
    let resps = roundtrip(
        addr,
        &[
            "this is not json".to_string(),
            r#"{"op":"ping"}"#.to_string(),
        ],
    );
    assert_eq!(resps[0].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(
        resps[0]
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str),
        Some("bad_request")
    );
    assert_eq!(resps[1].get("ok"), Some(&Json::Bool(true)), "conn survives");

    // Invalid UTF-8: an error response, then the connection closes.
    let mut bin = connect(addr);
    bin.write_all(b"\xff\xfe\xfd\n").unwrap();
    bin.flush().unwrap();
    let mut reader = BufReader::new(bin.try_clone().unwrap());
    let resp = read_response(&mut reader);
    assert_eq!(resp.get("ok"), Some(&Json::Bool(false)));
    let mut rest = Vec::new();
    let _ = bin.read_to_end(&mut rest);
    assert!(rest.is_empty(), "connection closes after invalid UTF-8");

    let resps = roundtrip(addr, &[r#"{"op":"ping"}"#.to_string()]);
    assert_eq!(resps[0].get("ok"), Some(&Json::Bool(true)));
    shutdown(addr);
}

/// Satellite: disconnecting mid-request — both mid-frame and with a
/// query in flight — leaves the server fully healthy.
#[test]
fn mid_request_disconnect_leaves_server_healthy() {
    let _g = lock();
    let addr = start_server(event_loop_config());

    // Half a frame, then vanish.
    let mut half = connect(addr);
    half.write_all(b"{\"op\":\"que").unwrap();
    half.flush().unwrap();
    drop(half);

    // A full query, then vanish without reading the response: the
    // worker's completion finds no connection and is dropped.
    let mut fire_and_forget = connect(addr);
    writeln!(
        fire_and_forget,
        "{}",
        query_line("select x.name from x in Person where x.age < 23")
    )
    .unwrap();
    fire_and_forget.flush().unwrap();
    drop(fire_and_forget);

    // Give the dropped query time to complete against a gone peer.
    std::thread::sleep(Duration::from_millis(200));
    for _ in 0..4 {
        let resps = roundtrip(
            addr,
            &[
                query_line("select x.name from x in Person where x.age < 23"),
                r#"{"op":"metrics"}"#.to_string(),
            ],
        );
        assert_eq!(resps[0].get("ok"), Some(&Json::Bool(true)));
        assert_eq!(resps[1].get("ok"), Some(&Json::Bool(true)));
    }
    shutdown(addr);
}

/// Satellite (fix check): the sharded plan cache and the event loop
/// leave every `serve.*` and `plan_cache.*` counter exactly where the
/// threaded mode leaves it for the same workload — including shard
/// stats summing to the old global totals.
#[test]
fn counters_are_equivalent_across_modes() {
    let _g = lock();

    fn run_workload(mode: ServeMode) -> Vec<(&'static str, u64)> {
        let before = obs::snapshot();
        let addr = start_server(ServerConfig {
            workers: 2,
            mode,
            ..event_loop_config()
        });
        let mut lines: Vec<String> = Vec::new();
        // A parameterized family: one miss, then hits.
        for i in 0..6 {
            lines.push(query_line(&format!(
                "select x.name from x in Person where x.age < {}",
                20 + i
            )));
        }
        // A second template.
        lines.push(query_line(
            "select x.age from x in Student where x.age < 25",
        ));
        // Invalidate (2 cached templates drop), then repopulate one.
        lines.push(format!(
            r#"{{"op":"reload_ic","ic":{}}}"#,
            obs::json_string(IC4)
        ));
        lines.push(query_line(
            "select x.name from x in Person where x.age < 21",
        ));
        // Trailing metrics round trip forces every prior counter bump
        // to be flushed before we snapshot.
        lines.push(r#"{"op":"metrics"}"#.to_string());
        let resps = roundtrip(addr, &lines);
        shutdown(addr);
        for r in &resps {
            assert_eq!(r.get("ok"), Some(&Json::Bool(true)));
        }
        let metrics = resps.last().unwrap();
        assert_eq!(
            metrics.get("serve_mode").and_then(Json::as_str),
            Some(mode.label())
        );
        // Shard stats visible on the wire: the session reports its
        // shard count alongside the (summed) cached-template count.
        let session = metrics.get("sessions").and_then(Json::as_arr).unwrap()[0].clone();
        let shards = session.get("cache_shards").and_then(Json::as_u64).unwrap();
        assert!(shards >= 1 && shards.is_power_of_two());
        assert_eq!(
            session.get("cached_templates").and_then(Json::as_u64),
            Some(1),
            "one template repopulated after the reload"
        );

        let delta = obs::snapshot().since(&before);
        let keys = [
            ("serve.requests", obs::Counter::ServeRequests),
            ("serve.shed", obs::Counter::ServeShed),
            (
                "serve.deadline_exceeded",
                obs::Counter::ServeDeadlineExceeded,
            ),
            ("plan_cache.hits", obs::Counter::PlanCacheHits),
            ("plan_cache.rebinds", obs::Counter::PlanCacheRebinds),
            ("plan_cache.misses", obs::Counter::PlanCacheMisses),
            (
                "plan_cache.invalidations",
                obs::Counter::PlanCacheInvalidations,
            ),
        ];
        keys.iter().map(|(n, c)| (*n, delta.counter(*c))).collect()
    }

    let event_loop = run_workload(ServeMode::EventLoop);
    let threaded = run_workload(ServeMode::Threaded);
    assert_eq!(
        event_loop, threaded,
        "counter totals must not depend on the serving mode"
    );
    // And the absolute values are the workload's arithmetic, not just
    // mutually consistent: 8 queries, 5 hits (ages 21..25 of the first
    // family), 3 misses (family, second template, post-reload), 2
    // invalidated entries.
    let get = |k: &str| {
        event_loop
            .iter()
            .find(|(n, _)| *n == k)
            .map(|(_, v)| *v)
            .unwrap()
    };
    assert_eq!(get("serve.requests"), 8);
    assert_eq!(get("serve.shed"), 0);
    assert_eq!(get("serve.deadline_exceeded"), 0);
    assert_eq!(get("plan_cache.hits"), 5);
    assert_eq!(get("plan_cache.rebinds"), 0);
    assert_eq!(get("plan_cache.misses"), 3);
    assert_eq!(get("plan_cache.invalidations"), 2);
}
