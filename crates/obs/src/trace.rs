//! Request-scoped trace context.
//!
//! A trace is opened with [`trace_begin`] on the thread that executes a
//! request and closed with [`trace_end`], which returns the ordered list
//! of span events that completed in between. Each event carries the span
//! name, its start offset relative to the trace begin, its duration, and
//! the delta of every counter the *executing thread* bumped while the
//! span was open. Counter deltas are derived from the thread's cumulative
//! cell totals (live cells plus everything already flushed), so snapshot
//! flushes in the middle of a span do not corrupt them. Work merged into
//! the global registry by *other* threads (e.g. the parallel Step-3
//! workers) is intentionally excluded: attributing it to one request
//! would be wrong under concurrency, so it stays visible only in the
//! global counters.
//!
//! The context is thread-local and costs one `Cell<bool>` read per span
//! when no trace is active, keeping the instrumentation-overhead budget
//! intact for batch (non-serving) workloads.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::{json_string, local_counter_totals, N_COUNTERS};

/// One completed span inside a trace, in completion order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span name (same registry as [`crate::span!`]), or a synthetic
    /// event name such as `serve.admission_wait`.
    pub name: &'static str,
    /// Start offset in nanoseconds relative to [`trace_begin`].
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nonzero counter deltas attributed to the executing thread while
    /// the span was open, sorted by counter name.
    pub counters: Vec<(&'static str, u64)>,
}

impl SpanEvent {
    /// Serializes the event as a single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut counters = String::from("{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                counters.push_str(", ");
            }
            counters.push_str(&format!("{}: {v}", json_string(name)));
        }
        counters.push('}');
        format!(
            "{{\"name\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"counters\": {}}}",
            json_string(self.name),
            self.start_ns,
            self.dur_ns,
            counters
        )
    }
}

/// A completed request trace: its id and ordered span events.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Request trace id (deterministic `session:generation:seq` under the
    /// service; free-form otherwise).
    pub id: String,
    /// Completed span events in completion order.
    pub events: Vec<SpanEvent>,
}

impl Trace {
    /// Serializes the event list as a JSON array.
    pub fn events_json(&self) -> String {
        let items: Vec<String> = self.events.iter().map(SpanEvent::to_json).collect();
        format!("[{}]", items.join(", "))
    }

    /// Duration of a named event, when present (first occurrence).
    pub fn event_dur_ns(&self, name: &str) -> Option<u64> {
        self.events
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.dur_ns)
    }
}

struct ActiveTrace {
    id: String,
    start: Instant,
    events: Vec<SpanEvent>,
}

thread_local! {
    /// Cheap per-span check; shadows `ACTIVE.is_some()`.
    static TRACING: Cell<bool> = const { Cell::new(false) };
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Returns whether a trace is active on the calling thread.
#[inline]
pub fn trace_active() -> bool {
    TRACING.try_with(Cell::get).unwrap_or(false)
}

/// Opens a trace on the calling thread, replacing any active one.
pub fn trace_begin(id: String) {
    let _ = ACTIVE.try_with(|a| {
        *a.borrow_mut() = Some(ActiveTrace {
            id,
            start: Instant::now(),
            events: Vec::new(),
        });
    });
    let _ = TRACING.try_with(|t| t.set(true));
}

/// Closes the calling thread's trace, returning its events (`None` when
/// no trace was active, e.g. after TLS teardown).
pub fn trace_end() -> Option<Trace> {
    let _ = TRACING.try_with(|t| t.set(false));
    ACTIVE
        .try_with(|a| a.borrow_mut().take())
        .ok()
        .flatten()
        .map(|t| Trace {
            id: t.id,
            events: t.events,
        })
}

/// Pushes a synthetic event (e.g. admission-queue wait measured before
/// the worker thread picked the request up) onto the active trace.
pub fn trace_event(name: &'static str, start_ns: u64, dur_ns: u64) {
    if !trace_active() {
        return;
    }
    let _ = ACTIVE.try_with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            t.events.push(SpanEvent {
                name,
                start_ns,
                dur_ns,
                counters: Vec::new(),
            });
        }
    });
}

/// Baseline of the executing thread's cumulative counter totals, captured
/// by [`crate::SpanGuard`] at span entry when a trace is active.
pub(crate) fn span_baseline() -> Option<Box<[u64; N_COUNTERS]>> {
    if !trace_active() {
        return None;
    }
    Some(Box::new(local_counter_totals()))
}

/// Completes a span inside the active trace: computes the counter delta
/// against `base` and appends the event.
pub(crate) fn push_span(
    name: &'static str,
    started: Instant,
    dur_ns: u64,
    base: &[u64; N_COUNTERS],
) {
    let now_totals = local_counter_totals();
    let mut counters: Vec<(&'static str, u64)> = Vec::new();
    for (idx, (after, before)) in now_totals.iter().zip(base.iter()).enumerate() {
        let delta = after.saturating_sub(*before);
        if delta != 0 {
            counters.push((crate::COUNTER_NAMES[idx], delta));
        }
    }
    counters.sort_by_key(|(name, _)| *name);
    let _ = ACTIVE.try_with(|a| {
        if let Some(t) = a.borrow_mut().as_mut() {
            let start_ns =
                u64::try_from(started.duration_since(t.start).as_nanos()).unwrap_or(u64::MAX);
            t.events.push(SpanEvent {
                name,
                start_ns,
                dur_ns,
                counters,
            });
        }
    });
}
