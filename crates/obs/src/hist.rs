//! Dependency-free streaming latency histograms.
//!
//! Log-bucketed (HDR-style) at two sub-buckets per octave: value `v > 1`
//! lands in bucket `2*floor(log2 v) + next-bit`, so the relative
//! quantile error is bounded by one half-octave (~33%) while the whole
//! histogram is a fixed 128-slot `u64` array — cheap to keep per thread
//! and to merge. Merging is element-wise addition, hence associative and
//! commutative: merging per-thread histograms in any order produces a
//! byte-identical result, the same discipline the counter registry
//! relies on for parallel-vs-sequential equivalence.

/// Number of buckets: index 0 holds zeros, index 1 holds ones, and each
/// octave `o in 1..=63` owns indices `2*o` and `2*o + 1`.
pub const N_HIST_BUCKETS: usize = 128;

/// A streaming log-bucketed histogram of `u64` samples (nanoseconds, by
/// convention). Tracks exact `count`/`min`/`max` besides the buckets, so
/// extreme quantiles are exact and a single-sample histogram reports the
/// sample itself.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    min: u64,
    max: u64,
    buckets: [u64; N_HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.quantile(0.5))
            .field("p99", &self.quantile(0.99))
            .finish()
    }
}

/// Bucket index for a sample (total order, exhaustive over `u64`).
#[inline]
fn bucket_index(v: u64) -> usize {
    match v {
        0 => 0,
        1 => 1,
        _ => {
            let o = 63 - v.leading_zeros() as usize; // o >= 1
            let sub = ((v >> (o - 1)) & 1) as usize;
            2 * o + sub
        }
    }
}

/// Inclusive upper bound of a bucket — the value a quantile falling in
/// the bucket reports (before clamping to the observed max).
fn bucket_upper(idx: usize) -> u64 {
    match idx {
        0 => 0,
        1 => 1,
        _ => {
            let o = (idx / 2) as u32;
            let sub = (idx % 2) as u128;
            let base = 1u128 << o;
            let width = 1u128 << (o - 1);
            u64::try_from(base + (sub + 1) * width - 1).unwrap_or(u64::MAX)
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            count: 0,
            min: 0,
            max: 0,
            buckets: [0; N_HIST_BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.buckets[bucket_index(v)] += 1;
    }

    /// Merges `other` into `self` (element-wise bucket addition; exact
    /// extrema combine). Associative and commutative, so any merge order
    /// over a set of histograms yields byte-identical state.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += *o;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The raw bucket array (stable layout; for tests and serializers).
    pub fn buckets(&self) -> &[u64; N_HIST_BUCKETS] {
        &self.buckets
    }

    /// The `p`-quantile (`p` clamped into `[0, 1]`), or `None` when no
    /// samples were recorded — never panics. Reports the containing
    /// bucket's upper bound clamped into the exact observed `[min, max]`
    /// range, so a single-sample histogram returns the sample itself and
    /// `quantile(1.0)` is always the exact max.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The difference of `self` relative to an `earlier` state of the
    /// same histogram (bucket-wise subtraction). `min`/`max` are taken
    /// from `self`: extrema cannot be un-merged.
    pub fn since(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        out.count = self.count.saturating_sub(earlier.count);
        out.min = self.min;
        out.max = self.max;
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(earlier.buckets.iter()))
        {
            *o = a.saturating_sub(*b);
        }
        out
    }

    /// Serializes the summary (`count`, `p50`, `p90`, `p99`, `max`) as a
    /// single-line JSON object; quantiles are `null` when empty.
    pub fn summary_json(&self) -> String {
        let q = |p: f64| match self.quantile(p) {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        let max = match self.max() {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
            self.count,
            q(0.5),
            q(0.9),
            q(0.99),
            max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert!(h.summary_json().contains("\"p50\": null"));
    }

    #[test]
    fn single_sample_is_reported_exactly() {
        for v in [0u64, 1, 2, 3, 7, 1_000_003, u64::MAX] {
            let mut h = Histogram::new();
            h.record(v);
            assert_eq!(h.quantile(0.0), Some(v));
            assert_eq!(h.quantile(0.5), Some(v));
            assert_eq!(h.quantile(1.0), Some(v));
        }
    }

    #[test]
    fn extreme_values_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(0);
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.quantile(1.0), Some(u64::MAX));
        assert_eq!(h.quantile(0.01), Some(0));
    }

    #[test]
    fn buckets_are_exhaustive_and_ordered() {
        let mut probes: Vec<u64> = Vec::new();
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            probes.extend([v, v | (v >> 1), v + (v / 3), v.saturating_mul(2) - 1]);
        }
        probes.extend([0, u64::MAX]);
        probes.sort_unstable();
        let mut last = 0usize;
        for probe in probes {
            let idx = bucket_index(probe);
            assert!(idx < N_HIST_BUCKETS);
            assert!(idx >= last, "bucket index is monotone in the sample");
            assert!(bucket_upper(idx) >= probe, "upper bound covers {probe}");
            last = idx;
        }
        assert_eq!(bucket_index(u64::MAX), N_HIST_BUCKETS - 1);
        assert_eq!(bucket_upper(N_HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn quantiles_bound_error_to_half_an_octave() {
        let mut h = Histogram::new();
        for i in 1..=10_000u64 {
            h.record(i);
        }
        let p50 = h.quantile(0.5).unwrap();
        assert!((4000..=7500).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((9000..=10_000).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn merge_matches_sequential_recording() {
        let mut all = Histogram::new();
        let mut parts = vec![Histogram::new(), Histogram::new(), Histogram::new()];
        for i in 0..999u64 {
            let v = i * i % 100_000;
            all.record(v);
            parts[(i % 3) as usize].record(v);
        }
        let mut merged = Histogram::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged, all);
        // Any merge order is byte-identical.
        let mut reversed = Histogram::new();
        for p in parts.iter().rev() {
            reversed.merge(p);
        }
        assert_eq!(reversed, all);
    }
}
