//! Dependency-free observability layer for the SQO pipeline.
//!
//! The workspace builds hermetically, so this crate supplies the small slice
//! of `tracing`/`metrics` functionality the pipeline needs, in the same
//! spirit as the `shims/` stand-ins:
//!
//! * **Spans** — [`span!`] returns a guard that records elapsed wall time
//!   into a thread-safe global registry keyed by a static name. Each span
//!   name aggregates `count / total_ns / min_ns / max_ns`. Guards are cheap
//!   enough to stay always-on and become a no-op when recording is disabled
//!   (a single relaxed atomic load).
//! * **Counters** — a fixed set of named monotonic counters ([`Counter`]).
//!   Increments land in thread-local cells and are merged into the global
//!   registry when the thread exits (or when the owning thread snapshots).
//!   The parallel Step-3 search relies on this: worker threads accumulate
//!   locally and their totals merge at the sequential join, so sequential
//!   and parallel runs report identical totals.
//! * **Histograms** — [`Histogram`] is a dependency-free log-bucketed
//!   (HDR-style, two sub-buckets per octave) streaming latency histogram.
//!   [`record_hist`] records into thread-local histograms that merge into
//!   a global registry with the same flush discipline as the counters
//!   (element-wise bucket addition is associative and commutative, so
//!   parallel and sequential merges are byte-identical). Every completed
//!   span additionally records its duration into the histogram of the
//!   same name, giving p50/p90/p99 per stage for free.
//! * **Traces** — [`trace_begin`] / [`trace_end`] open a request-scoped
//!   trace on the executing thread; spans completing inside it append
//!   ordered [`SpanEvent`]s (name, start offset, duration, per-thread
//!   counter deltas) for per-request attribution.
//! * **Provenance** — [`Provenance`] / [`ProvenanceStep`] records describing
//!   which residue, source integrity constraint, and transformation kind
//!   derived each rewrite. These are plain data (always populated, never
//!   gated by [`enabled`]).
//! * **Snapshots** — [`snapshot`] / [`snapshot_json`] expose the registry
//!   with a stable (sorted) key order for machine consumption.

#![warn(missing_docs)]

mod hist;
mod trace;

pub use hist::{Histogram, N_HIST_BUCKETS};
pub use trace::{trace_active, trace_begin, trace_end, trace_event, SpanEvent, Trace};

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable switch
// ---------------------------------------------------------------------------

/// Recording is on by default: the whole point of the layer is that it is
/// cheap enough to leave enabled. `set_enabled(false)` turns every span and
/// counter into a no-op behind one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Returns whether span/counter recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables span/counter recording globally.
///
/// Disabling does not clear previously recorded data; use [`reset`] for that.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// The fixed set of pipeline counters.
///
/// Every counter is monotonic within a process (until [`reset`]). The
/// discriminant doubles as the index into the counter arrays, and
/// [`Counter::name`] gives the stable dotted name used in snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Classes parsed by the ODL parser (Step 1 input).
    OdlClassesParsed,
    /// OQL queries translated to Datalog (Step 2).
    TranslateQueries,
    /// Residues attached to relation predicates during IC compilation.
    ResiduesAttached,
    /// Residues whose body matched a query and produced a candidate.
    ResiduesApplied,
    /// Residue applicability prefilter accepted (full match attempted).
    PrefilterHits,
    /// Residue applicability prefilter rejected (match skipped).
    PrefilterMisses,
    /// Atom-level unification attempts.
    UnifyAttempts,
    /// Subsumption checks (`match_body_onto` invocations).
    SubsumeChecks,
    /// Search nodes expanded by the Step-3 BFS.
    SearchNodesExpanded,
    /// Candidate nodes pruned by the Step-3 BFS (budget or variant cap).
    SearchNodesPruned,
    /// Candidates dropped because their fingerprint was already seen.
    SearchDedupHits,
    /// BFS levels processed by the Step-3 search.
    SearchLevels,
    /// Tuples flowing into join steps during evaluation.
    EvalJoinInputTuples,
    /// Tuples flowing out of join steps during evaluation.
    EvalJoinOutputTuples,
    /// Queries executed by the object-database evaluator.
    ExecQueries,
    /// Queries optimized by the `SemanticOptimizer` facade.
    OptimizerQueries,
    /// Equivalent rewrites (beyond the original) produced by the optimizer.
    OptimizerRewrites,
    /// Queries refuted outright by an integrity constraint.
    OptimizerContradictions,
    /// Plan-cache lookups answered with a fully retargeted cached plan.
    PlanCacheHits,
    /// Plan-cache lookups where the template matched but the parameter
    /// signature differed, forcing a fresh search that re-populated the
    /// template entry.
    PlanCacheRebinds,
    /// Plan-cache lookups that found no usable entry.
    PlanCacheMisses,
    /// Plan-cache entries dropped by a generation bump (IC/schema reload).
    PlanCacheInvalidations,
    /// Sessions prepared (ODL parse + Step-1 translation + residue
    /// compilation) by the service session registry.
    ServiceSessionsPrepared,
    /// Requests accepted by the serve front end (all ops).
    ServeRequests,
    /// Requests shed because the admission queue was full.
    ServeShed,
    /// Requests that missed their deadline before or during execution.
    ServeDeadlineExceeded,
    /// Total nanoseconds accepted requests spent waiting in the admission
    /// queue before a worker picked them up.
    ServeWaitNs,
    /// Requests whose service time exceeded the slow-query threshold.
    ServeSlowQueries,
    /// Equality probes against declared (persistent) hash indexes.
    ExecIndexProbes,
    /// Range probes against declared ordered indexes.
    ExecRangeProbes,
    /// Full relation passes (explicit scans plus ephemeral index builds).
    ExecScans,
    /// Path-expression chains fused into index-nested-loop walks.
    ExecChainsFused,
    /// Candidate variants eliminated by the subsumption index before
    /// analysis/costing (best-first Step-3 search).
    SearchSubsumedPruned,
    /// Residue applications skipped by the exactness prefilter: the
    /// residue head provably cannot change the answer set of any query.
    SearchExactSkipped,
    /// Peak size of the best-first priority frontier, summed per search.
    SearchFrontierPeak,
    /// Records appended to the object-store write-ahead log.
    StoreWalAppends,
    /// Bytes written by the most recent store snapshot (cumulative across
    /// snapshots; per-snapshot sizes are visible in the `persist` response).
    StoreSnapshotBytes,
    /// Total nanoseconds spent recovering stores (snapshot load + WAL
    /// tail replay).
    StoreRecoverNs,
    /// Total nanoseconds spent waiting to acquire store shard locks.
    StoreShardLockWaitNs,
}

/// Number of distinct counters.
pub const N_COUNTERS: usize = 39;

const COUNTER_NAMES: [&str; N_COUNTERS] = [
    "odl.classes_parsed",
    "translate.queries",
    "residue.attached",
    "residue.applied",
    "residue.prefilter_hits",
    "residue.prefilter_misses",
    "unify.attempts",
    "subsume.checks",
    "search.nodes_expanded",
    "search.nodes_pruned",
    "search.dedup_hits",
    "search.levels",
    "eval.join_input_tuples",
    "eval.join_output_tuples",
    "exec.queries",
    "optimizer.queries",
    "optimizer.rewrites",
    "optimizer.contradictions",
    "plan_cache.hits",
    "plan_cache.rebinds",
    "plan_cache.misses",
    "plan_cache.invalidations",
    "service.sessions_prepared",
    "serve.requests",
    "serve.shed",
    "serve.deadline_exceeded",
    "serve.wait_ns",
    "serve.slow_queries",
    "exec.index_probe",
    "exec.range_probe",
    "exec.scan",
    "exec.chain_fused",
    "search.subsumed_pruned",
    "search.exact_skipped",
    "search.frontier_peak",
    "store.wal_appends",
    "store.snapshot_bytes",
    "store.recover_ns",
    "store.shard_lock_wait",
];

impl Counter {
    /// Stable dotted name used as the snapshot key.
    #[inline]
    pub fn name(self) -> &'static str {
        COUNTER_NAMES[self as usize]
    }

    /// All counters, in declaration order.
    pub fn all() -> impl Iterator<Item = Counter> {
        (0..N_COUNTERS).map(|i| ALL_COUNTERS[i])
    }
}

const ALL_COUNTERS: [Counter; N_COUNTERS] = [
    Counter::OdlClassesParsed,
    Counter::TranslateQueries,
    Counter::ResiduesAttached,
    Counter::ResiduesApplied,
    Counter::PrefilterHits,
    Counter::PrefilterMisses,
    Counter::UnifyAttempts,
    Counter::SubsumeChecks,
    Counter::SearchNodesExpanded,
    Counter::SearchNodesPruned,
    Counter::SearchDedupHits,
    Counter::SearchLevels,
    Counter::EvalJoinInputTuples,
    Counter::EvalJoinOutputTuples,
    Counter::ExecQueries,
    Counter::OptimizerQueries,
    Counter::OptimizerRewrites,
    Counter::OptimizerContradictions,
    Counter::PlanCacheHits,
    Counter::PlanCacheRebinds,
    Counter::PlanCacheMisses,
    Counter::PlanCacheInvalidations,
    Counter::ServiceSessionsPrepared,
    Counter::ServeRequests,
    Counter::ServeShed,
    Counter::ServeDeadlineExceeded,
    Counter::ServeWaitNs,
    Counter::ServeSlowQueries,
    Counter::ExecIndexProbes,
    Counter::ExecRangeProbes,
    Counter::ExecScans,
    Counter::ExecChainsFused,
    Counter::SearchSubsumedPruned,
    Counter::SearchExactSkipped,
    Counter::SearchFrontierPeak,
    Counter::StoreWalAppends,
    Counter::StoreSnapshotBytes,
    Counter::StoreRecoverNs,
    Counter::StoreShardLockWaitNs,
];

/// Global merged totals. Thread-local cells flush here on thread exit and on
/// [`snapshot`]/[`reset`] from the owning thread.
static GLOBAL: [AtomicU64; N_COUNTERS] = [const { AtomicU64::new(0) }; N_COUNTERS];

/// Per-thread counter cells. Keeping increments thread-local means the hot
/// paths (unification, prefilter checks) never contend on a shared cache
/// line; the `Drop` impl merges each worker's totals into [`GLOBAL`] exactly
/// once, at the sequential join when `std::thread::scope` joins the worker.
struct LocalCells {
    cells: [Cell<u64>; N_COUNTERS],
    /// Cumulative totals already flushed to [`GLOBAL`] by this thread.
    /// `cells[i] + flushed[i]` is the thread's monotonic lifetime total,
    /// which the trace layer diffs to attribute counters to spans without
    /// adding any work to the hot [`add`] path (flushes are rare).
    flushed: [Cell<u64>; N_COUNTERS],
}

impl LocalCells {
    const fn new() -> Self {
        LocalCells {
            cells: [const { Cell::new(0) }; N_COUNTERS],
            flushed: [const { Cell::new(0) }; N_COUNTERS],
        }
    }

    fn flush(&self) {
        for ((cell, flushed), global) in self
            .cells
            .iter()
            .zip(self.flushed.iter())
            .zip(GLOBAL.iter())
        {
            let v = cell.replace(0);
            if v != 0 {
                flushed.set(flushed.get().wrapping_add(v));
                global.fetch_add(v, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for LocalCells {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: LocalCells = const { LocalCells::new() };
}

/// Increments `c` by one.
#[inline]
pub fn bump(c: Counter) {
    add(c, 1);
}

/// Adds `n` to counter `c`.
///
/// The increment lands in a thread-local cell; totals become globally
/// visible when the thread exits or when the thread calls [`snapshot`].
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    let idx = c as usize;
    // `try_with` so late increments during thread teardown (after the TLS
    // destructor ran) fall back to the global registry instead of panicking.
    let ok = LOCAL.try_with(|l| l.cells[idx].set(l.cells[idx].get() + n));
    if ok.is_err() {
        GLOBAL[idx].fetch_add(n, Ordering::Relaxed);
    }
}

/// The calling thread's monotonic lifetime counter totals (live cells plus
/// everything it already flushed). Used by the trace layer for per-span
/// counter deltas; immune to mid-span flushes, unlike the raw cells.
pub(crate) fn local_counter_totals() -> [u64; N_COUNTERS] {
    LOCAL
        .try_with(|l| {
            let mut out = [0u64; N_COUNTERS];
            for (o, (cell, flushed)) in out.iter_mut().zip(l.cells.iter().zip(l.flushed.iter())) {
                *o = cell.get().wrapping_add(flushed.get());
            }
            out
        })
        .unwrap_or([0; N_COUNTERS])
}

/// Flushes the calling thread's local counter cells and histograms into the
/// global registries.
///
/// Worker threads flush automatically on exit; long-lived threads (e.g. the
/// main thread) call this implicitly via [`snapshot`] / [`reset`].
pub fn flush_local() {
    let _ = LOCAL.try_with(LocalCells::flush);
    let _ = LOCAL_HISTS.try_with(LocalHists::flush);
}

// ---------------------------------------------------------------------------
// Histogram registry
// ---------------------------------------------------------------------------

/// Global merged histograms keyed by name. Span names land here via
/// [`SpanGuard`]; explicit request-level series (`serve.request`,
/// `serve.wait`) via [`record_hist`].
static HISTS: Mutex<BTreeMap<&'static str, Histogram>> = Mutex::new(BTreeMap::new());

/// Per-thread histograms, merged into [`HISTS`] with the same discipline as
/// the counter cells: on thread exit and on [`flush_local`] / [`snapshot`].
/// Bucket merges are element-wise additions, so the merged state does not
/// depend on thread interleaving or merge order.
struct LocalHists {
    map: RefCell<BTreeMap<&'static str, Histogram>>,
}

impl LocalHists {
    const fn new() -> Self {
        LocalHists {
            map: RefCell::new(BTreeMap::new()),
        }
    }

    fn flush(&self) {
        let mut local = self.map.borrow_mut();
        if local.is_empty() {
            return;
        }
        if let Ok(mut global) = HISTS.lock() {
            for (name, h) in local.iter() {
                global.entry(name).or_default().merge(h);
            }
        }
        local.clear();
    }
}

impl Drop for LocalHists {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL_HISTS: LocalHists = const { LocalHists::new() };
}

/// Records one sample (nanoseconds, by convention) into the named
/// histogram. Thread-local until the next flush, like counters.
#[inline]
pub fn record_hist(name: &'static str, ns: u64) {
    if !enabled() {
        return;
    }
    let ok = LOCAL_HISTS.try_with(|h| h.map.borrow_mut().entry(name).or_default().record(ns));
    if ok.is_err() {
        // TLS teardown: merge straight into the global registry.
        if let Ok(mut global) = HISTS.lock() {
            global.entry(name).or_default().record(ns);
        }
    }
}

/// Ensures the named histogram exists in the global registry (with zero
/// samples if never recorded), so consumers see a stable key set.
pub fn hist_touch(name: &'static str) {
    if let Ok(mut global) = HISTS.lock() {
        global.entry(name).or_default();
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Aggregated timing for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed span guards.
    pub count: u64,
    /// Total elapsed nanoseconds across all completions.
    pub total_ns: u64,
    /// Fastest single completion in nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Slowest single completion in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Mean elapsed nanoseconds per completion (0 when `count == 0`).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Span registry. Spans fire at pipeline-stage granularity (a handful per
/// optimized query), so one mutex around a sorted map is plenty; the hot
/// per-atom work uses thread-local [`Counter`]s instead.
static SPANS: Mutex<BTreeMap<&'static str, SpanStat>> = Mutex::new(BTreeMap::new());

/// RAII guard created by [`span!`]; records elapsed time on drop into the
/// span registry and the same-named latency histogram, and — when a trace
/// is active on this thread — appends a [`SpanEvent`] with the counter
/// delta observed while the span was open.
#[must_use = "binding the guard to `_name` keeps the span open for the scope"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
    trace_base: Option<Box<[u64; N_COUNTERS]>>,
}

impl SpanGuard {
    /// Starts a span. Prefer the [`span!`] macro at call sites.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() {
            return SpanGuard {
                name,
                start: None,
                trace_base: None,
            };
        }
        SpanGuard {
            name,
            start: Some(Instant::now()),
            trace_base: trace::span_baseline(),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Ok(mut spans) = SPANS.lock() {
                spans.entry(self.name).or_default().record(ns);
            }
            record_hist(self.name, ns);
            if let Some(base) = self.trace_base.take() {
                trace::push_span(self.name, start, ns, &base);
            }
        }
    }
}

/// Opens a timing span for the rest of the enclosing scope:
/// `let _span = obs::span!("step3.search");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of the counter and span registries.
///
/// Both maps use sorted (`BTreeMap`) key order, so serialized snapshots are
/// byte-comparable across runs and across the sequential/parallel search
/// backends.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals keyed by [`Counter::name`]. Every counter is present,
    /// including zeros, so the key set is build-independent.
    pub counters: BTreeMap<&'static str, u64>,
    /// Span aggregates keyed by span name.
    pub spans: BTreeMap<&'static str, SpanStat>,
    /// Latency histograms keyed by series name (span names plus explicit
    /// `serve.*` series).
    pub hists: BTreeMap<&'static str, Histogram>,
}

impl Snapshot {
    /// Returns the delta of `self` relative to an `earlier` snapshot.
    ///
    /// Counter values, span `count`/`total_ns`, and histogram buckets
    /// subtract; span and histogram `min`/`max` are taken from `self`
    /// (extrema cannot be un-merged). Spans and histograms with no
    /// completions since `earlier` are omitted.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                (
                    *name,
                    v.saturating_sub(earlier.counters.get(name).copied().unwrap_or(0)),
                )
            })
            .collect();
        let mut spans = BTreeMap::new();
        for (name, stat) in &self.spans {
            let before = earlier.spans.get(name).copied().unwrap_or_default();
            let count = stat.count.saturating_sub(before.count);
            if count > 0 {
                spans.insert(
                    *name,
                    SpanStat {
                        count,
                        total_ns: stat.total_ns.saturating_sub(before.total_ns),
                        min_ns: stat.min_ns,
                        max_ns: stat.max_ns,
                    },
                );
            }
        }
        let mut hists = BTreeMap::new();
        for (name, h) in &self.hists {
            let delta = match earlier.hists.get(name) {
                Some(before) => h.since(before),
                None => h.clone(),
            };
            if delta.count() > 0 {
                hists.insert(*name, delta);
            }
        }
        Snapshot {
            counters,
            spans,
            hists,
        }
    }

    /// Counter total by [`Counter`], defaulting to 0.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// Serializes the snapshot as a JSON object with stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        out.push_str("\n  },\n  \"spans\": {");
        first = true;
        for (name, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                json_string(name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns
            ));
        }
        out.push_str("\n  },\n  \"hists\": {");
        first = true;
        for (name, h) in &self.hists {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {}",
                json_string(name),
                h.summary_json()
            ));
        }
        out.push_str("\n  }\n}");
        out
    }

    /// Human-readable rendering of the snapshot (counters, then spans).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for (name, v) in &self.counters {
            if *v != 0 {
                out.push_str(&format!("  {name:<28} {v}\n"));
            }
        }
        out.push_str("spans (count / total / mean):\n");
        for (name, s) in &self.spans {
            out.push_str(&format!(
                "  {name:<28} {:>6} / {:>10} ns / {:>8} ns\n",
                s.count,
                s.total_ns,
                s.mean_ns()
            ));
        }
        out.push_str("hists (count / p50 / p99 / max):\n");
        for (name, h) in &self.hists {
            let q = |p: f64| h.quantile(p).unwrap_or(0);
            out.push_str(&format!(
                "  {name:<28} {:>6} / {:>8} ns / {:>8} ns / {:>8} ns\n",
                h.count(),
                q(0.5),
                q(0.99),
                h.max().unwrap_or(0)
            ));
        }
        out
    }
}

/// Takes a snapshot of all counters, spans, and histograms.
///
/// Flushes the calling thread's local cells first, so totals include all
/// work done on this thread and on any already-joined worker thread.
pub fn snapshot() -> Snapshot {
    flush_local();
    let counters = Counter::all()
        .map(|c| (c.name(), GLOBAL[c as usize].load(Ordering::Relaxed)))
        .collect();
    let spans = SPANS.lock().map(|s| s.clone()).unwrap_or_default();
    let hists = HISTS.lock().map(|h| h.clone()).unwrap_or_default();
    Snapshot {
        counters,
        spans,
        hists,
    }
}

/// [`snapshot`] serialized as JSON with stable key order.
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

/// Zeroes all global counters, the calling thread's local cells and
/// histograms, and the span and histogram registries. Counts still held by
/// *other* live threads are unaffected until those threads flush.
pub fn reset() {
    let _ = LOCAL.try_with(|l| {
        for (cell, flushed) in l.cells.iter().zip(l.flushed.iter()) {
            cell.set(0);
            flushed.set(0);
        }
    });
    let _ = LOCAL_HISTS.try_with(|h| h.map.borrow_mut().clear());
    for global in &GLOBAL {
        global.store(0, Ordering::Relaxed);
    }
    if let Ok(mut spans) = SPANS.lock() {
        spans.clear();
    }
    if let Ok(mut hists) = HISTS.lock() {
        hists.clear();
    }
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

/// One derivation step in a rewrite's provenance chain: which transformation
/// kind fired, driven by which residue and source integrity constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvenanceStep {
    /// Transformation kind (e.g. `"scope-reduction"`, `"join-elimination"`).
    pub kind: &'static str,
    /// Residue id of the form `r<index>@<anchor-pred>`, when a compiled
    /// residue drove the step.
    pub residue: Option<String>,
    /// Name of the source integrity constraint (or view), when known.
    pub ic: Option<String>,
    /// Free-form description of what the step changed.
    pub detail: String,
}

impl ProvenanceStep {
    /// The synthetic step carried by the unmodified original query, so every
    /// equivalent query — including the input itself — has a non-empty chain.
    pub fn original() -> ProvenanceStep {
        ProvenanceStep {
            kind: "original",
            residue: None,
            ic: None,
            detail: "input query, no transformation applied".to_string(),
        }
    }

    /// Serializes the step as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\": {}, \"residue\": {}, \"ic\": {}, \"detail\": {}}}",
            json_string(self.kind),
            json_opt_string(self.residue.as_deref()),
            json_opt_string(self.ic.as_deref()),
            json_string(&self.detail)
        )
    }
}

impl fmt::Display for ProvenanceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(r) = &self.residue {
            write!(f, " via {r}")?;
        }
        if let Some(ic) = &self.ic {
            write!(f, " [{ic}]")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

/// The full derivation chain for one equivalent query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Derivation steps in application order.
    pub steps: Vec<ProvenanceStep>,
}

impl Provenance {
    /// Chain for the unmodified original query (one synthetic step).
    pub fn original() -> Provenance {
        Provenance {
            steps: vec![ProvenanceStep::original()],
        }
    }

    /// Builds a chain from derivation steps; an empty step list denotes the
    /// original query and maps to [`Provenance::original`].
    pub fn from_steps(steps: Vec<ProvenanceStep>) -> Provenance {
        if steps.is_empty() {
            Provenance::original()
        } else {
            Provenance { steps }
        }
    }

    /// Serializes the chain as a JSON array of step objects.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.steps.iter().map(ProvenanceStep::to_json).collect();
        format!("[{}]", items.join(", "))
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}. {step}", i + 1)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JSON helpers (shared by explain() implementations downstream)
// ---------------------------------------------------------------------------

/// Escapes and quotes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `json_string` for optional values; `None` serializes as `null`.
pub fn json_opt_string(s: Option<&str>) -> String {
    match s {
        Some(s) => json_string(s),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests in this binary: they all mutate the global registry.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_merge_from_scoped_workers() {
        let _g = lock();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        bump(Counter::UnifyAttempts);
                    }
                    // Scope exit only waits for the closure to return, not
                    // for TLS destructors, so flush before returning.
                    flush_local();
                });
            }
        });
        bump(Counter::UnifyAttempts);
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::UnifyAttempts), 401);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = lock();
        reset();
        set_enabled(false);
        bump(Counter::SubsumeChecks);
        {
            let _s = span!("test.disabled");
        }
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::SubsumeChecks), 0);
        assert!(!snap.spans.contains_key("test.disabled"));
    }

    #[test]
    fn span_guard_records_count_and_extrema() {
        let _g = lock();
        reset();
        for _ in 0..3 {
            let _s = span!("test.span");
        }
        let snap = snapshot();
        let stat = snap.spans["test.span"];
        assert_eq!(stat.count, 3);
        assert!(stat.min_ns <= stat.max_ns);
        assert!(stat.total_ns >= stat.max_ns);
    }

    #[test]
    fn snapshot_json_has_stable_sorted_keys() {
        let _g = lock();
        reset();
        bump(Counter::SearchLevels);
        let json = snapshot_json();
        let a = json.find("\"eval.join_input_tuples\"").unwrap();
        let b = json.find("\"search.levels\"").unwrap();
        let c = json.find("\"unify.attempts\"").unwrap();
        assert!(a < b && b < c, "counter keys must be sorted");
        assert_eq!(json, snapshot_json());
    }

    #[test]
    fn since_subtracts_counters_and_span_counts() {
        let _g = lock();
        reset();
        add(Counter::ResiduesApplied, 5);
        {
            let _s = span!("test.delta");
        }
        let before = snapshot();
        add(Counter::ResiduesApplied, 7);
        {
            let _s = span!("test.delta");
        }
        let delta = snapshot().since(&before);
        assert_eq!(delta.counter(Counter::ResiduesApplied), 7);
        assert_eq!(delta.spans["test.delta"].count, 1);
        assert_eq!(delta.counter(Counter::SearchLevels), 0);
    }

    #[test]
    fn provenance_chain_renders_json_and_text() {
        let step = ProvenanceStep {
            kind: "scope-reduction",
            residue: Some("r3@faculty".into()),
            ic: Some("IC4".into()),
            detail: "added not dept(x)".into(),
        };
        let chain = Provenance::from_steps(vec![step]);
        let json = chain.to_json();
        assert!(json.contains("\"kind\": \"scope-reduction\""));
        assert!(json.contains("\"residue\": \"r3@faculty\""));
        assert!(json.contains("\"ic\": \"IC4\""));
        let text = chain.to_string();
        assert!(text.contains("via r3@faculty"));
        assert_eq!(Provenance::from_steps(Vec::new()).steps[0].kind, "original");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_opt_string(None), "null");
    }

    #[test]
    fn spans_record_into_same_named_histograms() {
        let _g = lock();
        reset();
        for _ in 0..5 {
            let _s = span!("test.hist.span");
        }
        let snap = snapshot();
        let h = &snap.hists["test.hist.span"];
        assert_eq!(h.count(), 5);
        assert!(h.quantile(0.5).is_some());
        assert!(snap.to_json().contains("\"test.hist.span\""));
    }

    #[test]
    fn histograms_merge_from_scoped_workers_byte_identically() {
        let _g = lock();
        reset();
        // Four workers record disjoint deterministic samples...
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..250u64 {
                        record_hist("test.hist.merge", (t * 250 + i) * 17 % 9973);
                    }
                    flush_local();
                });
            }
        });
        let parallel = snapshot().hists["test.hist.merge"].clone();
        reset();
        // ...and one thread records the union sequentially.
        for v in 0..1000u64 {
            record_hist("test.hist.merge", v * 17 % 9973);
        }
        let sequential = snapshot().hists["test.hist.merge"].clone();
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.summary_json(), sequential.summary_json());
    }

    #[test]
    fn disabled_recording_skips_histograms_and_traces() {
        let _g = lock();
        reset();
        set_enabled(false);
        record_hist("test.hist.disabled", 42);
        {
            let _s = span!("test.hist.disabled");
        }
        set_enabled(true);
        let snap = snapshot();
        assert!(!snap.hists.contains_key("test.hist.disabled"));
    }

    #[test]
    fn hist_touch_pins_the_key_with_zero_samples() {
        let _g = lock();
        reset();
        hist_touch("test.hist.touched");
        let snap = snapshot();
        let h = &snap.hists["test.hist.touched"];
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), None);
    }

    #[test]
    fn trace_collects_ordered_events_with_counter_deltas() {
        let _g = lock();
        reset();
        assert!(trace_end().is_none());
        trace_begin("s:0:7".to_string());
        trace_event("serve.admission_wait", 0, 1234);
        {
            let _s = span!("test.trace.outer");
            add(Counter::UnifyAttempts, 3);
            // A snapshot mid-span flushes the local cells; the cumulative
            // totals keep the delta intact.
            let _ = snapshot();
            add(Counter::UnifyAttempts, 2);
        }
        {
            let _s = span!("test.trace.second");
        }
        let trace = trace_end().expect("trace was active");
        assert_eq!(trace.id, "s:0:7");
        let names: Vec<&str> = trace.events.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "serve.admission_wait",
                "test.trace.outer",
                "test.trace.second"
            ]
        );
        assert_eq!(trace.event_dur_ns("serve.admission_wait"), Some(1234));
        let outer = &trace.events[1];
        assert!(outer.counters.contains(&("unify.attempts", 5)));
        let json = trace.events_json();
        assert!(json.contains("\"name\": \"test.trace.outer\""));
        assert!(json.contains("\"unify.attempts\": 5"));
        // The trace is closed: further spans do not record events.
        assert!(!trace_active());
        assert!(trace_end().is_none());
    }
}
