//! Dependency-free observability layer for the SQO pipeline.
//!
//! The workspace builds hermetically, so this crate supplies the small slice
//! of `tracing`/`metrics` functionality the pipeline needs, in the same
//! spirit as the `shims/` stand-ins:
//!
//! * **Spans** — [`span!`] returns a guard that records elapsed wall time
//!   into a thread-safe global registry keyed by a static name. Each span
//!   name aggregates `count / total_ns / min_ns / max_ns`. Guards are cheap
//!   enough to stay always-on and become a no-op when recording is disabled
//!   (a single relaxed atomic load).
//! * **Counters** — a fixed set of named monotonic counters ([`Counter`]).
//!   Increments land in thread-local cells and are merged into the global
//!   registry when the thread exits (or when the owning thread snapshots).
//!   The parallel Step-3 search relies on this: worker threads accumulate
//!   locally and their totals merge at the sequential join, so sequential
//!   and parallel runs report identical totals.
//! * **Provenance** — [`Provenance`] / [`ProvenanceStep`] records describing
//!   which residue, source integrity constraint, and transformation kind
//!   derived each rewrite. These are plain data (always populated, never
//!   gated by [`enabled`]).
//! * **Snapshots** — [`snapshot`] / [`snapshot_json`] expose the registry
//!   with a stable (sorted) key order for machine consumption.

#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Enable switch
// ---------------------------------------------------------------------------

/// Recording is on by default: the whole point of the layer is that it is
/// cheap enough to leave enabled. `set_enabled(false)` turns every span and
/// counter into a no-op behind one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Returns whether span/counter recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Enables or disables span/counter recording globally.
///
/// Disabling does not clear previously recorded data; use [`reset`] for that.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// The fixed set of pipeline counters.
///
/// Every counter is monotonic within a process (until [`reset`]). The
/// discriminant doubles as the index into the counter arrays, and
/// [`Counter::name`] gives the stable dotted name used in snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Classes parsed by the ODL parser (Step 1 input).
    OdlClassesParsed,
    /// OQL queries translated to Datalog (Step 2).
    TranslateQueries,
    /// Residues attached to relation predicates during IC compilation.
    ResiduesAttached,
    /// Residues whose body matched a query and produced a candidate.
    ResiduesApplied,
    /// Residue applicability prefilter accepted (full match attempted).
    PrefilterHits,
    /// Residue applicability prefilter rejected (match skipped).
    PrefilterMisses,
    /// Atom-level unification attempts.
    UnifyAttempts,
    /// Subsumption checks (`match_body_onto` invocations).
    SubsumeChecks,
    /// Search nodes expanded by the Step-3 BFS.
    SearchNodesExpanded,
    /// Candidate nodes pruned by the Step-3 BFS (budget or variant cap).
    SearchNodesPruned,
    /// Candidates dropped because their fingerprint was already seen.
    SearchDedupHits,
    /// BFS levels processed by the Step-3 search.
    SearchLevels,
    /// Tuples flowing into join steps during evaluation.
    EvalJoinInputTuples,
    /// Tuples flowing out of join steps during evaluation.
    EvalJoinOutputTuples,
    /// Queries executed by the object-database evaluator.
    ExecQueries,
    /// Queries optimized by the `SemanticOptimizer` facade.
    OptimizerQueries,
    /// Equivalent rewrites (beyond the original) produced by the optimizer.
    OptimizerRewrites,
    /// Queries refuted outright by an integrity constraint.
    OptimizerContradictions,
    /// Plan-cache lookups answered with a fully retargeted cached plan.
    PlanCacheHits,
    /// Plan-cache lookups where the template matched but the parameter
    /// signature differed, forcing a fresh search that re-populated the
    /// template entry.
    PlanCacheRebinds,
    /// Plan-cache lookups that found no usable entry.
    PlanCacheMisses,
    /// Plan-cache entries dropped by a generation bump (IC/schema reload).
    PlanCacheInvalidations,
    /// Sessions prepared (ODL parse + Step-1 translation + residue
    /// compilation) by the service session registry.
    ServiceSessionsPrepared,
    /// Requests accepted by the serve front end (all ops).
    ServeRequests,
    /// Requests shed because the admission queue was full.
    ServeShed,
    /// Requests that missed their deadline before or during execution.
    ServeDeadlineExceeded,
    /// Equality probes against declared (persistent) hash indexes.
    ExecIndexProbes,
    /// Range probes against declared ordered indexes.
    ExecRangeProbes,
    /// Full relation passes (explicit scans plus ephemeral index builds).
    ExecScans,
    /// Path-expression chains fused into index-nested-loop walks.
    ExecChainsFused,
}

/// Number of distinct counters.
pub const N_COUNTERS: usize = 30;

const COUNTER_NAMES: [&str; N_COUNTERS] = [
    "odl.classes_parsed",
    "translate.queries",
    "residue.attached",
    "residue.applied",
    "residue.prefilter_hits",
    "residue.prefilter_misses",
    "unify.attempts",
    "subsume.checks",
    "search.nodes_expanded",
    "search.nodes_pruned",
    "search.dedup_hits",
    "search.levels",
    "eval.join_input_tuples",
    "eval.join_output_tuples",
    "exec.queries",
    "optimizer.queries",
    "optimizer.rewrites",
    "optimizer.contradictions",
    "plan_cache.hits",
    "plan_cache.rebinds",
    "plan_cache.misses",
    "plan_cache.invalidations",
    "service.sessions_prepared",
    "serve.requests",
    "serve.shed",
    "serve.deadline_exceeded",
    "exec.index_probe",
    "exec.range_probe",
    "exec.scan",
    "exec.chain_fused",
];

impl Counter {
    /// Stable dotted name used as the snapshot key.
    #[inline]
    pub fn name(self) -> &'static str {
        COUNTER_NAMES[self as usize]
    }

    /// All counters, in declaration order.
    pub fn all() -> impl Iterator<Item = Counter> {
        (0..N_COUNTERS).map(|i| ALL_COUNTERS[i])
    }
}

const ALL_COUNTERS: [Counter; N_COUNTERS] = [
    Counter::OdlClassesParsed,
    Counter::TranslateQueries,
    Counter::ResiduesAttached,
    Counter::ResiduesApplied,
    Counter::PrefilterHits,
    Counter::PrefilterMisses,
    Counter::UnifyAttempts,
    Counter::SubsumeChecks,
    Counter::SearchNodesExpanded,
    Counter::SearchNodesPruned,
    Counter::SearchDedupHits,
    Counter::SearchLevels,
    Counter::EvalJoinInputTuples,
    Counter::EvalJoinOutputTuples,
    Counter::ExecQueries,
    Counter::OptimizerQueries,
    Counter::OptimizerRewrites,
    Counter::OptimizerContradictions,
    Counter::PlanCacheHits,
    Counter::PlanCacheRebinds,
    Counter::PlanCacheMisses,
    Counter::PlanCacheInvalidations,
    Counter::ServiceSessionsPrepared,
    Counter::ServeRequests,
    Counter::ServeShed,
    Counter::ServeDeadlineExceeded,
    Counter::ExecIndexProbes,
    Counter::ExecRangeProbes,
    Counter::ExecScans,
    Counter::ExecChainsFused,
];

/// Global merged totals. Thread-local cells flush here on thread exit and on
/// [`snapshot`]/[`reset`] from the owning thread.
static GLOBAL: [AtomicU64; N_COUNTERS] = [const { AtomicU64::new(0) }; N_COUNTERS];

/// Per-thread counter cells. Keeping increments thread-local means the hot
/// paths (unification, prefilter checks) never contend on a shared cache
/// line; the `Drop` impl merges each worker's totals into [`GLOBAL`] exactly
/// once, at the sequential join when `std::thread::scope` joins the worker.
struct LocalCells {
    cells: [Cell<u64>; N_COUNTERS],
}

impl LocalCells {
    const fn new() -> Self {
        LocalCells {
            cells: [const { Cell::new(0) }; N_COUNTERS],
        }
    }

    fn flush(&self) {
        for (cell, global) in self.cells.iter().zip(GLOBAL.iter()) {
            let v = cell.replace(0);
            if v != 0 {
                global.fetch_add(v, Ordering::Relaxed);
            }
        }
    }
}

impl Drop for LocalCells {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static LOCAL: LocalCells = const { LocalCells::new() };
}

/// Increments `c` by one.
#[inline]
pub fn bump(c: Counter) {
    add(c, 1);
}

/// Adds `n` to counter `c`.
///
/// The increment lands in a thread-local cell; totals become globally
/// visible when the thread exits or when the thread calls [`snapshot`].
#[inline]
pub fn add(c: Counter, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    let idx = c as usize;
    // `try_with` so late increments during thread teardown (after the TLS
    // destructor ran) fall back to the global registry instead of panicking.
    let ok = LOCAL.try_with(|l| l.cells[idx].set(l.cells[idx].get() + n));
    if ok.is_err() {
        GLOBAL[idx].fetch_add(n, Ordering::Relaxed);
    }
}

/// Flushes the calling thread's local counter cells into the global registry.
///
/// Worker threads flush automatically on exit; long-lived threads (e.g. the
/// main thread) call this implicitly via [`snapshot`] / [`reset`].
pub fn flush_local() {
    let _ = LOCAL.try_with(LocalCells::flush);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Aggregated timing for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed span guards.
    pub count: u64,
    /// Total elapsed nanoseconds across all completions.
    pub total_ns: u64,
    /// Fastest single completion in nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Slowest single completion in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }

    /// Mean elapsed nanoseconds per completion (0 when `count == 0`).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Span registry. Spans fire at pipeline-stage granularity (a handful per
/// optimized query), so one mutex around a sorted map is plenty; the hot
/// per-atom work uses thread-local [`Counter`]s instead.
static SPANS: Mutex<BTreeMap<&'static str, SpanStat>> = Mutex::new(BTreeMap::new());

/// RAII guard created by [`span!`]; records elapsed time on drop.
#[must_use = "binding the guard to `_name` keeps the span open for the scope"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// Starts a span. Prefer the [`span!`] macro at call sites.
    #[inline]
    pub fn enter(name: &'static str) -> SpanGuard {
        let start = if enabled() {
            Some(Instant::now())
        } else {
            None
        };
        SpanGuard { name, start }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            if let Ok(mut spans) = SPANS.lock() {
                spans.entry(self.name).or_default().record(ns);
            }
        }
    }
}

/// Opens a timing span for the rest of the enclosing scope:
/// `let _span = obs::span!("step3.search");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// A point-in-time copy of the counter and span registries.
///
/// Both maps use sorted (`BTreeMap`) key order, so serialized snapshots are
/// byte-comparable across runs and across the sequential/parallel search
/// backends.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals keyed by [`Counter::name`]. Every counter is present,
    /// including zeros, so the key set is build-independent.
    pub counters: BTreeMap<&'static str, u64>,
    /// Span aggregates keyed by span name.
    pub spans: BTreeMap<&'static str, SpanStat>,
}

impl Snapshot {
    /// Returns the delta of `self` relative to an `earlier` snapshot.
    ///
    /// Counter values and span `count`/`total_ns` subtract; span `min_ns` /
    /// `max_ns` are taken from `self` (extrema cannot be un-merged). Spans
    /// with no completions since `earlier` are omitted.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                (
                    *name,
                    v.saturating_sub(earlier.counters.get(name).copied().unwrap_or(0)),
                )
            })
            .collect();
        let mut spans = BTreeMap::new();
        for (name, stat) in &self.spans {
            let before = earlier.spans.get(name).copied().unwrap_or_default();
            let count = stat.count.saturating_sub(before.count);
            if count > 0 {
                spans.insert(
                    *name,
                    SpanStat {
                        count,
                        total_ns: stat.total_ns.saturating_sub(before.total_ns),
                        min_ns: stat.min_ns,
                        max_ns: stat.max_ns,
                    },
                );
            }
        }
        Snapshot { counters, spans }
    }

    /// Counter total by [`Counter`], defaulting to 0.
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// Serializes the snapshot as a JSON object with stable key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {v}", json_string(name)));
        }
        out.push_str("\n  },\n  \"spans\": {");
        first = true;
        for (name, s) in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
                json_string(name),
                s.count,
                s.total_ns,
                s.min_ns,
                s.max_ns
            ));
        }
        out.push_str("\n  }\n}");
        out
    }

    /// Human-readable rendering of the snapshot (counters, then spans).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("counters:\n");
        for (name, v) in &self.counters {
            if *v != 0 {
                out.push_str(&format!("  {name:<28} {v}\n"));
            }
        }
        out.push_str("spans (count / total / mean):\n");
        for (name, s) in &self.spans {
            out.push_str(&format!(
                "  {name:<28} {:>6} / {:>10} ns / {:>8} ns\n",
                s.count,
                s.total_ns,
                s.mean_ns()
            ));
        }
        out
    }
}

/// Takes a snapshot of all counters and spans.
///
/// Flushes the calling thread's local cells first, so totals include all
/// work done on this thread and on any already-joined worker thread.
pub fn snapshot() -> Snapshot {
    flush_local();
    let counters = Counter::all()
        .map(|c| (c.name(), GLOBAL[c as usize].load(Ordering::Relaxed)))
        .collect();
    let spans = SPANS.lock().map(|s| s.clone()).unwrap_or_default();
    Snapshot { counters, spans }
}

/// [`snapshot`] serialized as JSON with stable key order.
pub fn snapshot_json() -> String {
    snapshot().to_json()
}

/// Zeroes all global counters, the calling thread's local cells, and the
/// span registry. Counts still held by *other* live threads are unaffected
/// until those threads flush.
pub fn reset() {
    let _ = LOCAL.try_with(|l| {
        for cell in &l.cells {
            cell.set(0);
        }
    });
    for global in &GLOBAL {
        global.store(0, Ordering::Relaxed);
    }
    if let Ok(mut spans) = SPANS.lock() {
        spans.clear();
    }
}

// ---------------------------------------------------------------------------
// Provenance
// ---------------------------------------------------------------------------

/// One derivation step in a rewrite's provenance chain: which transformation
/// kind fired, driven by which residue and source integrity constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProvenanceStep {
    /// Transformation kind (e.g. `"scope-reduction"`, `"join-elimination"`).
    pub kind: &'static str,
    /// Residue id of the form `r<index>@<anchor-pred>`, when a compiled
    /// residue drove the step.
    pub residue: Option<String>,
    /// Name of the source integrity constraint (or view), when known.
    pub ic: Option<String>,
    /// Free-form description of what the step changed.
    pub detail: String,
}

impl ProvenanceStep {
    /// The synthetic step carried by the unmodified original query, so every
    /// equivalent query — including the input itself — has a non-empty chain.
    pub fn original() -> ProvenanceStep {
        ProvenanceStep {
            kind: "original",
            residue: None,
            ic: None,
            detail: "input query, no transformation applied".to_string(),
        }
    }

    /// Serializes the step as a single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"kind\": {}, \"residue\": {}, \"ic\": {}, \"detail\": {}}}",
            json_string(self.kind),
            json_opt_string(self.residue.as_deref()),
            json_opt_string(self.ic.as_deref()),
            json_string(&self.detail)
        )
    }
}

impl fmt::Display for ProvenanceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        if let Some(r) = &self.residue {
            write!(f, " via {r}")?;
        }
        if let Some(ic) = &self.ic {
            write!(f, " [{ic}]")?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

/// The full derivation chain for one equivalent query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Derivation steps in application order.
    pub steps: Vec<ProvenanceStep>,
}

impl Provenance {
    /// Chain for the unmodified original query (one synthetic step).
    pub fn original() -> Provenance {
        Provenance {
            steps: vec![ProvenanceStep::original()],
        }
    }

    /// Builds a chain from derivation steps; an empty step list denotes the
    /// original query and maps to [`Provenance::original`].
    pub fn from_steps(steps: Vec<ProvenanceStep>) -> Provenance {
        if steps.is_empty() {
            Provenance::original()
        } else {
            Provenance { steps }
        }
    }

    /// Serializes the chain as a JSON array of step objects.
    pub fn to_json(&self) -> String {
        let items: Vec<String> = self.steps.iter().map(ProvenanceStep::to_json).collect();
        format!("[{}]", items.join(", "))
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}. {step}", i + 1)?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// JSON helpers (shared by explain() implementations downstream)
// ---------------------------------------------------------------------------

/// Escapes and quotes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `json_string` for optional values; `None` serializes as `null`.
pub fn json_opt_string(s: Option<&str>) -> String {
    match s {
        Some(s) => json_string(s),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests in this binary: they all mutate the global registry.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counters_merge_from_scoped_workers() {
        let _g = lock();
        reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        bump(Counter::UnifyAttempts);
                    }
                    // Scope exit only waits for the closure to return, not
                    // for TLS destructors, so flush before returning.
                    flush_local();
                });
            }
        });
        bump(Counter::UnifyAttempts);
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::UnifyAttempts), 401);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = lock();
        reset();
        set_enabled(false);
        bump(Counter::SubsumeChecks);
        {
            let _s = span!("test.disabled");
        }
        set_enabled(true);
        let snap = snapshot();
        assert_eq!(snap.counter(Counter::SubsumeChecks), 0);
        assert!(!snap.spans.contains_key("test.disabled"));
    }

    #[test]
    fn span_guard_records_count_and_extrema() {
        let _g = lock();
        reset();
        for _ in 0..3 {
            let _s = span!("test.span");
        }
        let snap = snapshot();
        let stat = snap.spans["test.span"];
        assert_eq!(stat.count, 3);
        assert!(stat.min_ns <= stat.max_ns);
        assert!(stat.total_ns >= stat.max_ns);
    }

    #[test]
    fn snapshot_json_has_stable_sorted_keys() {
        let _g = lock();
        reset();
        bump(Counter::SearchLevels);
        let json = snapshot_json();
        let a = json.find("\"eval.join_input_tuples\"").unwrap();
        let b = json.find("\"search.levels\"").unwrap();
        let c = json.find("\"unify.attempts\"").unwrap();
        assert!(a < b && b < c, "counter keys must be sorted");
        assert_eq!(json, snapshot_json());
    }

    #[test]
    fn since_subtracts_counters_and_span_counts() {
        let _g = lock();
        reset();
        add(Counter::ResiduesApplied, 5);
        {
            let _s = span!("test.delta");
        }
        let before = snapshot();
        add(Counter::ResiduesApplied, 7);
        {
            let _s = span!("test.delta");
        }
        let delta = snapshot().since(&before);
        assert_eq!(delta.counter(Counter::ResiduesApplied), 7);
        assert_eq!(delta.spans["test.delta"].count, 1);
        assert_eq!(delta.counter(Counter::SearchLevels), 0);
    }

    #[test]
    fn provenance_chain_renders_json_and_text() {
        let step = ProvenanceStep {
            kind: "scope-reduction",
            residue: Some("r3@faculty".into()),
            ic: Some("IC4".into()),
            detail: "added not dept(x)".into(),
        };
        let chain = Provenance::from_steps(vec![step]);
        let json = chain.to_json();
        assert!(json.contains("\"kind\": \"scope-reduction\""));
        assert!(json.contains("\"residue\": \"r3@faculty\""));
        assert!(json.contains("\"ic\": \"IC4\""));
        let text = chain.to_string();
        assert!(text.contains("via r3@faculty"));
        assert_eq!(Provenance::from_steps(Vec::new()).steps[0].kind, "original");
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_opt_string(None), "null");
    }
}
