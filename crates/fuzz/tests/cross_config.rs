//! Full-pipeline determinism over the fuzz corpus's first 50 seeds: for
//! every generated case, the parallel and sequential Step-3 backends must
//! produce **byte-identical** `explain_json()` reports (span timings
//! cleared — they are the only nondeterministic field), and the
//! best-first search engine must produce a report byte-identical to the
//! exhaustive-BFS engine (counters additionally cleared — pruning
//! telemetry like `search.subsumed_pruned` legitimately exists only on
//! the best-first side). Together with `obs_equivalence.rs` (which runs
//! at the Datalog level under both `--features parallel` and
//! `--no-default-features` in CI), this pins the guarantee that explain
//! output never depends on the backend, the search strategy, or the
//! build configuration.
//!
//! Everything runs inside ONE test function: per-report counter deltas
//! are computed against the process-global `sqo-obs` registry, so
//! concurrently running tests in the same binary would pollute them.

use sqo_core::Backend;
use sqo_datalog::search::Strategy;
use sqo_fuzz::gen::generate_case;
use sqo_fuzz::oracle::run_inputs;
use sqo_fuzz::spec::CaseInputs;
use std::collections::BTreeMap;

fn build(inputs: &CaseInputs) -> sqo_core::SemanticOptimizer {
    let mut opt = sqo_core::SemanticOptimizer::from_odl(&inputs.odl).expect("valid odl");
    for ic in &inputs.ics {
        opt.add_constraint_text(ic).expect("valid ic");
    }
    opt
}

#[test]
fn first_50_seeds_explain_json_backend_and_strategy_invariant() {
    let mut checked = 0usize;
    for seed in 0u64..50 {
        let spec = generate_case(seed);
        let inputs = spec.inputs();
        // Skip cases the oracle itself would skip (none expected today,
        // but the generator contract allows them).
        if run_inputs(&inputs).is_err() {
            continue;
        }
        let query = sqo_oql::parse_oql(&inputs.oql).expect("valid oql");

        let mut opt = build(&inputs);
        let mut par = opt
            .optimize_query_backend(&query, Backend::Parallel)
            .expect("parallel optimize");
        // Fresh optimizer for the sequential run: residue compilation
        // and symbol interning state must not leak between backends for
        // the comparison to mean anything.
        let mut opt = build(&inputs);
        let mut seq = opt
            .optimize_query_backend(&query, Backend::Sequential)
            .expect("sequential optimize");

        // The same query under the pre-best-first exhaustive-BFS engine.
        let mut opt = build(&inputs);
        opt.set_search_strategy(Strategy::Bfs);
        let mut bfs = opt.optimize_query(&query).expect("bfs optimize");

        // Span and histogram wall-clock timings are the legitimately
        // nondeterministic fields; everything else must match bytewise.
        par.stats.spans = BTreeMap::new();
        seq.stats.spans = BTreeMap::new();
        par.stats.hists = BTreeMap::new();
        seq.stats.hists = BTreeMap::new();
        let par_json = par.explain_json();
        let seq_json = seq.explain_json();
        assert_eq!(
            par_json, seq_json,
            "seed {seed}: explain_json differs between backends for `{}`",
            inputs.oql
        );

        // Strategy invariance: the BFS report must match the best-first
        // one byte-for-byte once counters are also cleared (dedup/prune
        // accounting differs by construction — the best-first engine
        // skips work BFS performs — but verdicts, variants, plans, and
        // every other field may not).
        bfs.stats.spans = BTreeMap::new();
        bfs.stats.hists = BTreeMap::new();
        bfs.stats.counters = BTreeMap::new();
        par.stats.counters = BTreeMap::new();
        assert_eq!(
            par.explain_json(),
            bfs.explain_json(),
            "seed {seed}: explain_json differs between best-first and bfs for `{}`",
            inputs.oql
        );
        checked += 1;
    }
    assert!(checked >= 45, "only {checked}/50 seeds were comparable");
}
