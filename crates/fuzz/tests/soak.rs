//! Mixed-tenant mini-soak against the event-loop server (seed of
//! ROADMAP item 5b).
//!
//! Three university sessions with different integrity-constraint sets
//! share one event-loop server. The soak alternates serialized `create`
//! writes (mirrored into per-tenant oracle stores), pipelined bursts of
//! Zipf-skewed `execute:true` queries from concurrent clients, and
//! periodic `reload_ic` swaps that invalidate each tenant's plan cache
//! mid-run. Every query answer count is checked against the answer-set
//! oracle: the *original* (unoptimized) translation executed on the
//! local mirror of that tenant's store. A divergence means the served
//! semantic rewrite changed the answer set — the same invariant the
//! fuzz harness enforces, here under concurrency, pipelining, and cache
//! churn.
//!
//! Ignored by default (it is a soak, not a unit test); CI's fuzz job
//! runs it with `cargo test -p sqo-fuzz --test soak -- --ignored`.
//! `SQO_SOAK_REQUESTS` scales the query budget (default 400).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqo_core::SemanticOptimizer;
use sqo_objdb::{execute, ObjectDb, UniversityConfig, Value};
use sqo_service::json::{self, Json};
use sqo_service::{ServeMode, Server, ServerConfig, SessionRegistry, SessionSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

const IC_STRICT: &str = "ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).";
const IC_WEAK: &str = "ic IC4w: Age >= 25 <- faculty(X, N, Age, S, R, Ad).";
const IC_SALARY: &str = "ic IC1: Salary > 40000 <- faculty(X, N, A, Salary, R, Ad).";

/// One tenant: its session name, the ICs `reload_ic` cycles through
/// (all of which hold on the fixture data, so served rewrites must be
/// answer-preserving), and the local oracle mirror of its store.
struct Tenant {
    name: &'static str,
    ics: &'static [&'static str],
    ic_cursor: usize,
    mirror: ObjectDb,
}

/// The query pool every tenant draws from, Zipf-skewed towards the
/// front. Mixes always-satisfiable Person scans, Faculty ranges that
/// are contradictions under the strict IC (served as zero answers with
/// no evaluation), and Student lookups.
fn query_pool() -> Vec<String> {
    let mut pool = Vec::new();
    for k in [27, 24, 40, 21] {
        pool.push(format!("select x.name from x in Person where x.age < {k}"));
    }
    for k in [28, 33, 60] {
        pool.push(format!("select f.name from f in Faculty where f.age < {k}"));
    }
    pool.push("select s.name from s in Student where s.age < 30".to_string());
    pool.push("select f.name from f in Faculty where f.salary > 45000".to_string());
    pool.push("select s.name from s in Student".to_string());
    pool
}

/// Sample an index in `0..n` with Zipf weights `1/(i+1)`.
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    let total: f64 = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).sum();
    let mut t = rng.gen_range(0.0..total);
    for i in 0..n {
        let w = 1.0 / (i as f64 + 1.0);
        if t < w {
            return i;
        }
        t -= w;
    }
    n - 1
}

fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(60)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

/// Send each line and read its response before sending the next.
fn roundtrip(addr: SocketAddr, lines: &[String]) -> Vec<Json> {
    let (mut stream, mut reader) = connect(addr);
    lines
        .iter()
        .map(|l| {
            writeln!(stream, "{l}").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            json::parse(&resp).unwrap()
        })
        .collect()
}

/// Send every line in one write (a pipelined batch), then read all
/// responses; the server must answer in request order.
fn pipelined(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    lines: &[String],
) -> Vec<Json> {
    let mut batch = String::new();
    for l in lines {
        batch.push_str(l);
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes()).unwrap();
    lines
        .iter()
        .map(|_| {
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            json::parse(&resp).unwrap()
        })
        .collect()
}

#[test]
#[ignore = "mini-soak: run explicitly or via the CI fuzz job (-- --ignored)"]
fn mixed_tenant_zipf_soak() {
    let budget: usize = std::env::var("SQO_SOAK_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);

    let mut tenants = vec![
        Tenant {
            name: "alpha",
            ics: &[IC_STRICT, IC_WEAK],
            ic_cursor: 0,
            mirror: UniversityConfig::default().build().unwrap().db,
        },
        Tenant {
            name: "beta",
            ics: &[IC_WEAK, IC_SALARY],
            ic_cursor: 0,
            mirror: UniversityConfig::default().build().unwrap().db,
        },
        Tenant {
            name: "gamma",
            ics: &[IC_SALARY, IC_STRICT, IC_WEAK],
            ic_cursor: 0,
            mirror: UniversityConfig::default().build().unwrap().db,
        },
    ];

    let registry = Arc::new(SessionRegistry::new());
    for t in &tenants {
        registry
            .prepare(t.name, SessionSpec::University, Some(t.ics[0]))
            .unwrap();
        registry
            .get(t.name)
            .unwrap()
            .attach_university_data()
            .unwrap();
    }
    let server = Server::bind(
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_capacity: 128,
            mode: ServeMode::EventLoop,
            ..ServerConfig::default()
        },
        registry,
    )
    .unwrap();
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    // The oracle translates with a no-IC optimizer: translation is
    // Steps 1–2 only, so the baseline Datalog is the query *before* any
    // semantic rewriting.
    let baseline_opt = SemanticOptimizer::university();
    let pool = query_pool();
    let translations: Vec<_> = pool
        .iter()
        .map(|oql| {
            let q = sqo_oql::parse_oql(oql).unwrap();
            baseline_opt.translate(&q).unwrap().query
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let mut issued = 0usize;
    let mut round = 0usize;
    const CLIENTS: usize = 3;
    const BURST: usize = 8;

    while issued < budget {
        round += 1;

        // Serialized write phase: a few Person creates on Zipf-chosen
        // tenants, mirrored into the local oracle stores. Person writes
        // can never violate the Faculty ICs, so every IC stays true and
        // rewrites must stay answer-preserving.
        for _ in 0..2 {
            let ti = zipf(&mut rng, tenants.len());
            let age = rng.gen_range(16i64..80);
            let name = format!("soak{round}_{age}");
            let t = &mut tenants[ti];
            let resp = &roundtrip(
                addr,
                &[format!(
                    r#"{{"op":"create","session":"{}","class":"Person","attrs":{{"name":{},"age":{age}}}}}"#,
                    t.name,
                    sqo_obs::json_string(&name),
                )],
            )[0];
            assert_eq!(resp.get("ok"), Some(&Json::Bool(true)), "create: {resp:?}");
            let oid = t
                .mirror
                .create(
                    "Person",
                    vec![("name", name.into()), ("age", Value::Int(age))],
                )
                .unwrap();
            // Identical fixture + identical write sequence ⇒ identical
            // oid allocation; a drift here means the mirror desynced.
            assert_eq!(resp.get("oid").and_then(Json::as_u64), Some(oid.0));
        }

        // Oracle expectations for this round: original translation
        // executed on each tenant's mirror.
        let expected: Vec<Vec<u64>> = tenants
            .iter()
            .map(|t| {
                translations
                    .iter()
                    .map(|q| execute(&t.mirror, q).unwrap().0.len() as u64)
                    .collect()
            })
            .collect();

        // Concurrent pipelined query phase: each client samples
        // Zipf-skewed (tenant, query) pairs and fires them as one
        // batch; answers must come back in order and match the oracle.
        let mut plans: Vec<Vec<(usize, usize)>> = Vec::new();
        for _ in 0..CLIENTS {
            let burst = BURST.min(budget.saturating_sub(issued).max(1));
            let mut picks = Vec::with_capacity(burst);
            for _ in 0..burst {
                picks.push((zipf(&mut rng, tenants.len()), zipf(&mut rng, pool.len())));
            }
            issued += burst;
            plans.push(picks);
        }
        let workers: Vec<_> = plans
            .into_iter()
            .map(|picks| {
                let expected = expected.clone();
                let pool = pool.clone();
                let names: Vec<&'static str> = tenants.iter().map(|t| t.name).collect();
                std::thread::spawn(move || {
                    let lines: Vec<String> = picks
                        .iter()
                        .map(|&(ti, qi)| {
                            format!(
                                r#"{{"op":"query","session":"{}","oql":{},"execute":true}}"#,
                                names[ti],
                                sqo_obs::json_string(&pool[qi]),
                            )
                        })
                        .collect();
                    let (mut stream, mut reader) = connect(addr);
                    let resps = pipelined(&mut stream, &mut reader, &lines);
                    for (i, (resp, &(ti, qi))) in resps.iter().zip(&picks).enumerate() {
                        assert_eq!(
                            resp.get("ok"),
                            Some(&Json::Bool(true)),
                            "client batch #{i} [{}]: {resp:?}",
                            lines[i]
                        );
                        assert_eq!(
                            resp.get("answers").and_then(Json::as_u64),
                            Some(expected[ti][qi]),
                            "tenant {} query [{}] diverged from the oracle: {resp:?}",
                            names[ti],
                            pool[qi]
                        );
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }

        // IC churn phase: every third round, rotate one tenant to its
        // next (still data-consistent) constraint set, invalidating its
        // plan cache under the concurrent-tenant load that follows.
        if round.is_multiple_of(3) {
            let ti = round / 3 % tenants.len();
            let t = &mut tenants[ti];
            t.ic_cursor = (t.ic_cursor + 1) % t.ics.len();
            let resp = &roundtrip(
                addr,
                &[format!(
                    r#"{{"op":"reload_ic","session":"{}","ic":{}}}"#,
                    t.name,
                    sqo_obs::json_string(t.ics[t.ic_cursor]),
                )],
            )[0];
            assert_eq!(
                resp.get("ok"),
                Some(&Json::Bool(true)),
                "reload_ic: {resp:?}"
            );
        }
    }

    // Health check: nothing was shed or timed out, and the server was
    // really running the event loop the whole time.
    let metrics = &roundtrip(addr, &[r#"{"op":"metrics"}"#.to_string()])[0];
    assert_eq!(
        metrics.get("serve_mode").and_then(Json::as_str),
        Some("event-loop")
    );
    let counters = metrics
        .get("stats")
        .and_then(|s| s.get("counters"))
        .expect("metrics counters");
    let counter = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert!(
        counter("serve.requests") >= issued as u64,
        "served fewer queries than issued: {metrics:?}"
    );
    assert_eq!(counter("serve.shed"), 0, "soak load was shed: {metrics:?}");
    assert_eq!(
        counter("serve.deadline_exceeded"),
        0,
        "soak queries timed out: {metrics:?}"
    );

    roundtrip(addr, &[r#"{"op":"shutdown"}"#.to_string()]);
    server_thread.join().unwrap();
}
