//! Regression tests for the oracle's contradiction-soundness check
//! (satellite fix): a [`sqo_core::Verdict::Contradiction`] claims the
//! query can never return answers, so the oracle must *evaluate* the
//! original query anyway and flag any contradiction verdict whose
//! baseline answer set is non-empty. Before this check existed, a
//! contradiction verdict short-circuited evaluation entirely — an unsound
//! contradiction (e.g. from a store violating its declared ICs, or a
//! solver bug) would sail through the harness unnoticed.

use sqo_fuzz::oracle::{run_inputs, CaseStatus};
use sqo_fuzz::spec::CaseInputs;
use sqo_objdb::GenericConfig;
use std::collections::BTreeMap;

const ODL: &str = "interface C0 { extent C0; attribute long a0_0; };";
const IC: &str = "ic F0: A1 >= 100 <- c0(OID, A1).";
const QUERY: &str = "select x0 from x0 in C0 where x0.a0_0 < 50";

fn inputs(int_range: (i64, i64)) -> CaseInputs {
    CaseInputs {
        odl: ODL.to_string(),
        ics: vec![IC.to_string()],
        population: GenericConfig {
            counts: vec![("C0".to_string(), 6)],
            int_ranges: BTreeMap::from([("a0_0".to_string(), int_range)]),
            str_domains: BTreeMap::new(),
            unique_attrs: Default::default(),
            links_per_object: 1,
            seed: 11,
        },
        oql: QUERY.to_string(),
        sibling_oql: None,
    }
}

#[test]
fn contradiction_with_empty_baseline_passes() {
    // Store honors the IC (all a0_0 in [100, 200]), so `a0_0 < 50` really
    // is empty and the contradiction verdict is sound.
    let status = run_inputs(&inputs((100, 200))).expect("case valid");
    match status {
        CaseStatus::Pass(info) => {
            assert!(info.contradiction, "expected a contradiction verdict");
            assert_eq!(info.baseline_rows, 0);
        }
        CaseStatus::Mismatch(m) => panic!("sound contradiction flagged: {m:?}"),
    }
}

#[test]
fn contradiction_with_nonempty_baseline_is_flagged() {
    // Store VIOLATES the IC (all a0_0 in [0, 40]): the optimizer still
    // derives the contradiction from `a0_0 < 50` vs `a0_0 >= 100`, but
    // the store answers 6 rows — the oracle must flag it, not trust the
    // verdict.
    let status = run_inputs(&inputs((0, 40))).expect("case valid");
    match status {
        CaseStatus::Mismatch(m) => {
            assert_eq!(m.path, "contradiction", "wrong check flagged: {m:?}");
            assert!(
                m.detail.contains("answer rows"),
                "detail should cite the non-empty baseline: {}",
                m.detail
            );
        }
        CaseStatus::Pass(_) => {
            panic!("unsound contradiction verdict accepted over a non-empty answer set")
        }
    }
}
