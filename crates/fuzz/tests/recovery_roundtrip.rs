//! The durability differential (store PR satellite): sampled fuzz cases
//! save their populated store to disk, recover it through the
//! snapshot + WAL path, and require the recovered store to reproduce the
//! baseline answer set for the original query and every equivalent.
//! These tests pin the sampling contract and run the round-trip
//! explicitly on handcrafted cases from both verdict families.

use sqo_datalog::search::Strategy;
use sqo_fuzz::oracle::{run_inputs_full, CaseStatus};
use sqo_fuzz::spec::CaseInputs;
use sqo_fuzz::RECOVERY_SAMPLE;
use sqo_objdb::GenericConfig;
use std::collections::BTreeMap;

const ODL: &str = "interface C0 { extent C0; attribute long a0_0; };";
const IC: &str = "ic F0: A1 >= 100 <- c0(OID, A1).";

fn inputs(oql: &str) -> CaseInputs {
    CaseInputs {
        odl: ODL.to_string(),
        ics: vec![IC.to_string()],
        population: GenericConfig {
            counts: vec![("C0".to_string(), 8)],
            int_ranges: BTreeMap::from([("a0_0".to_string(), (100, 200))]),
            str_domains: BTreeMap::new(),
            unique_attrs: Default::default(),
            links_per_object: 1,
            seed: 7,
        },
        oql: oql.to_string(),
        sibling_oql: None,
    }
}

#[test]
fn recovery_roundtrip_passes_on_equivalents_case() {
    // `a0_0 < 150` is satisfiable under the IC, so the verdict carries
    // equivalents; with recovery on, each of them (and the baseline) is
    // re-evaluated against the recovered store.
    let case = inputs("select x0 from x0 in C0 where x0.a0_0 < 150");
    for strategy in [Strategy::BestFirst, Strategy::Bfs] {
        let status = run_inputs_full(&case, strategy, true).expect("case valid");
        match status {
            CaseStatus::Pass(info) => assert!(!info.contradiction),
            CaseStatus::Mismatch(m) => panic!("recovery round-trip flagged: {m:?}"),
        }
    }
}

#[test]
fn recovery_roundtrip_passes_on_contradiction_case() {
    // A sound contradiction: the recovered store must stay empty for the
    // baseline query too.
    let case = inputs("select x0 from x0 in C0 where x0.a0_0 < 50");
    let status = run_inputs_full(&case, Strategy::default(), true).expect("case valid");
    match status {
        CaseStatus::Pass(info) => {
            assert!(info.contradiction);
            assert_eq!(info.baseline_rows, 0);
        }
        CaseStatus::Mismatch(m) => panic!("recovery round-trip flagged: {m:?}"),
    }
}

#[test]
fn recovery_sampling_covers_generated_seeds() {
    // The driver samples every RECOVERY_SAMPLE-th seed; the contract the
    // acceptance sweep relies on is that seed 0 (and so a quarter of any
    // 0..N range) pays for the durability round-trip.
    let sampled = (0..100u64)
        .filter(|s| s.is_multiple_of(RECOVERY_SAMPLE))
        .count();
    assert!((0..100u64).any(|s| s.is_multiple_of(RECOVERY_SAMPLE)));
    assert_eq!(sampled, 25);
}
