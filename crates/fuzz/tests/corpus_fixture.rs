//! Pins the committed `subsumption_permuted_cmps.repro` corpus fixture to
//! the behaviour it was written to capture: the two same-shape ICs
//! (`S0`/`S1`) restrict *different* attribute positions of the same
//! class, so the two residue application orders produce body-permuted —
//! alpha-equivalent — variants that only the exact canonical-form
//! [`SubsumptionIndex`] collapses. Replaying it must (a) pass the
//! answer-set oracle under both search strategies and (b) actually fire
//! the `search.subsumed_pruned` counter under the best-first engine.
//!
//! This file is its own test binary on purpose: the counter assertion
//! reads deltas from the process-global `sqo-obs` registry, and
//! concurrent tests in the same binary would pollute them.

use sqo_datalog::search::Strategy;
use sqo_fuzz::repro::{parse, replay_with};
use sqo_obs as obs;

#[test]
fn subsumption_fixture_prunes_and_matches_oracle() {
    let text = include_str!("../../../tests/corpus/subsumption_permuted_cmps.repro");
    let case = parse(text).expect("fixture parses");

    obs::reset();
    let report = replay_with(&case, Strategy::BestFirst);
    assert!(report.ok, "best-first replay failed: {}", report.detail);
    let pruned = obs::snapshot()
        .counters
        .get("search.subsumed_pruned")
        .copied()
        .unwrap_or(0);
    assert!(
        pruned > 0,
        "fixture no longer exercises subsumption pruning (search.subsumed_pruned = 0)"
    );

    let report = replay_with(&case, Strategy::Bfs);
    assert!(report.ok, "bfs replay failed: {}", report.detail);
}
