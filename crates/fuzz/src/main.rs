//! `sqo-fuzz` — differential semantic-equivalence fuzzing CLI.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(sqo_fuzz::cli_main(&args));
}
