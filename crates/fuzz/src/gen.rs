//! Seed-driven case generation.
//!
//! One seed fully determines one [`CaseSpec`]. The generator keeps two
//! invariants the oracle relies on:
//!
//! 1. **ICs hold by construction.** Every range IC narrows a tracked
//!    per-attribute population interval (starting at
//!    [`crate::spec::INT_INTERVAL`]); an IC that would empty the interval is
//!    skipped. The population recipe then draws values from the final
//!    interval, so the store satisfies every emitted IC — *globally*,
//!    which is stricter than the per-class requirement and therefore
//!    sound (class relations include subclass members).
//! 2. **Queries are well-formed.** Hops only traverse relationship
//!    members visible on the current variable's inheritance chain, and
//!    predicates only reference attributes visible on their variable.

use crate::spec::{
    AttrKind, AttrSpec, CaseSpec, ClassSpec, HopSpec, IcOp, IcSpec, PredSpec, QuerySpec, RelSpec,
    INT_INTERVAL,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

const STR_POOL: &[&str] = &["alpha", "beta", "gamma", "delta", "epsilon"];

/// Generate the [`CaseSpec`] for `seed`.
pub fn generate_case(seed: u64) -> CaseSpec {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(seed));

    // --- classes ---------------------------------------------------------
    let n_classes = rng.gen_range(2usize..5);
    let mut classes = Vec::with_capacity(n_classes);
    for i in 0..n_classes {
        let parent = if i > 0 && rng.gen_bool(0.55) {
            Some(rng.gen_range(0usize..i))
        } else {
            None
        };
        let n_attrs = rng.gen_range(1usize..3);
        let mut attrs = Vec::with_capacity(n_attrs);
        for j in 0..n_attrs {
            let kind = if rng.gen_bool(0.7) {
                AttrKind::Int
            } else {
                AttrKind::Str
            };
            attrs.push(AttrSpec {
                name: format!("a{i}_{j}"),
                kind,
            });
        }
        // A key is a string attribute populated with unique values; add a
        // dedicated one occasionally so key-based join elimination has
        // something to bite on.
        let key = if rng.gen_bool(0.3) {
            attrs.push(AttrSpec {
                name: format!("a{i}_k"),
                kind: AttrKind::Str,
            });
            Some(attrs.len() - 1)
        } else {
            None
        };
        classes.push(ClassSpec {
            name: format!("C{i}"),
            parent,
            attrs,
            key,
            count: rng.gen_range(3usize..9),
        });
    }

    // --- relationships ---------------------------------------------------
    let n_rels = rng.gen_range(1usize..3);
    let mut rels = Vec::with_capacity(n_rels);
    for k in 0..n_rels {
        let from = rng.gen_range(0usize..n_classes);
        let to = rng.gen_range(0usize..n_classes);
        let (many, inv_many) = match rng.gen_range(0usize..3) {
            0 => (true, true),   // many-to-many
            1 => (false, true),  // to-one forward, set inverse
            _ => (false, false), // one-to-one
        };
        rels.push(RelSpec {
            name: format!("r{k}"),
            from,
            to,
            many,
            inv_name: format!("r{k}i"),
            inv_many,
        });
    }

    // --- population intervals, narrowed by ICs ---------------------------
    let spec_wip = CaseSpec {
        seed,
        classes,
        rels,
        ics: Vec::new(),
        int_ranges: BTreeMap::new(),
        str_domains: BTreeMap::new(),
        links_per_object: 1 + rng.gen_range(0usize..3),
        query: QuerySpec {
            root: 0,
            hops: Vec::new(),
            preds: Vec::new(),
            selects: vec![(0, None)],
            distinct: false,
        },
    };
    let mut spec = spec_wip;

    let mut intervals: BTreeMap<String, (i64, i64)> = BTreeMap::new();
    let mut str_domains: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for c in &spec.classes {
        for (j, a) in c.attrs.iter().enumerate() {
            match a.kind {
                AttrKind::Int => {
                    intervals.insert(a.name.clone(), INT_INTERVAL);
                }
                AttrKind::Str => {
                    if Some(j) != c.key {
                        let n = rng.gen_range(2usize..5);
                        str_domains.insert(
                            a.name.clone(),
                            STR_POOL[..n].iter().map(|s| s.to_string()).collect(),
                        );
                    }
                }
            }
        }
    }

    let n_ics = rng.gen_range(1usize..4);
    let mut ics = Vec::new();
    for n in 0..n_ics {
        // Pick a class with at least one integer attribute on its chain.
        let class = rng.gen_range(0usize..spec.classes.len());
        let int_attrs: Vec<String> = spec
            .chain_attrs(class)
            .into_iter()
            .filter(|a| a.kind == AttrKind::Int)
            .map(|a| a.name.clone())
            .collect();
        if int_attrs.is_empty() {
            continue;
        }
        let attr = int_attrs[rng.gen_range(0usize..int_attrs.len())].clone();
        let (lo, hi) = intervals[&attr];
        if lo >= hi {
            continue; // interval too tight for further narrowing
        }
        let op = match rng.gen_range(0usize..4) {
            0 => IcOp::Ge,
            1 => IcOp::Gt,
            2 => IcOp::Le,
            _ => IcOp::Lt,
        };
        // Narrow the interval so the IC is satisfied by construction and
        // the new interval stays non-empty.
        let k = match op {
            IcOp::Ge => {
                let k = rng.gen_range(lo + 1..hi + 1);
                intervals.insert(attr.clone(), (k, hi));
                k
            }
            IcOp::Gt => {
                let k = rng.gen_range(lo..hi);
                intervals.insert(attr.clone(), (k + 1, hi));
                k
            }
            IcOp::Le => {
                let k = rng.gen_range(lo..hi);
                intervals.insert(attr.clone(), (lo, k));
                k
            }
            IcOp::Lt => {
                let k = rng.gen_range(lo + 1..hi + 1);
                intervals.insert(attr.clone(), (lo, k - 1));
                k
            }
        };
        ics.push(IcSpec {
            name: format!("F{n}"),
            class,
            attr,
            op,
            k,
        });
    }
    spec.ics = ics;
    spec.int_ranges = intervals;
    spec.str_domains = str_domains;

    // --- query -----------------------------------------------------------
    let root = rng.gen_range(0usize..spec.classes.len());
    let mut hops = Vec::new();
    let mut var_classes = vec![root];
    let n_hops = rng.gen_range(0usize..3);
    for _ in 0..n_hops {
        let cur = *var_classes.last().unwrap();
        let chain = spec.chain(cur);
        // A hop can follow a forward member declared anywhere on the
        // current chain, or an inverse member likewise.
        let mut candidates: Vec<HopSpec> = Vec::new();
        for (ri, r) in spec.rels.iter().enumerate() {
            if chain.contains(&r.from) {
                candidates.push(HopSpec {
                    rel: ri,
                    forward: true,
                });
            }
            if chain.contains(&r.to) {
                candidates.push(HopSpec {
                    rel: ri,
                    forward: false,
                });
            }
        }
        if candidates.is_empty() {
            break;
        }
        let h = candidates[rng.gen_range(0usize..candidates.len())].clone();
        let r = &spec.rels[h.rel];
        var_classes.push(if h.forward { r.to } else { r.from });
        hops.push(h);
    }

    let mut preds = Vec::new();
    let n_preds = rng.gen_range(0usize..3);
    for _ in 0..n_preds {
        let var = rng.gen_range(0usize..var_classes.len());
        let attrs = spec.chain_attrs(var_classes[var]);
        if attrs.is_empty() {
            continue;
        }
        let a = attrs[rng.gen_range(0usize..attrs.len())];
        match a.kind {
            AttrKind::Int => {
                let (lo, hi) = spec.int_ranges[&a.name];
                // Constants near the populated interval's edges exercise
                // restriction removal (implied predicate) and contradiction
                // detection, not just mid-range filtering.
                let k = rng.gen_range(lo.saturating_sub(2)..hi + 3);
                let op = ["<", "<=", ">", ">=", "="][rng.gen_range(0usize..5)];
                preds.push(PredSpec::IntCmp {
                    var,
                    attr: a.name.clone(),
                    op: op.to_string(),
                    k,
                });
            }
            AttrKind::Str => {
                if let Some(domain) = spec.str_domains.get(&a.name) {
                    let value = domain[rng.gen_range(0usize..domain.len())].clone();
                    preds.push(PredSpec::StrEq {
                        var,
                        attr: a.name.clone(),
                        value,
                    });
                }
            }
        }
    }
    // When two variables share a visible attribute, occasionally join on
    // it — on key attributes this is the redundant-join shape that
    // key-based elimination targets.
    if var_classes.len() >= 2 && rng.gen_bool(0.35) {
        'join: for i in 0..var_classes.len() {
            for j in (i + 1)..var_classes.len() {
                let ai: Vec<String> = spec
                    .chain_attrs(var_classes[i])
                    .iter()
                    .map(|a| a.name.clone())
                    .collect();
                let shared: Vec<String> = spec
                    .chain_attrs(var_classes[j])
                    .iter()
                    .map(|a| a.name.clone())
                    .filter(|n| ai.contains(n))
                    .collect();
                if let Some(attr) = shared.first() {
                    preds.push(PredSpec::AttrJoin {
                        lhs: i,
                        rhs: j,
                        attr: attr.clone(),
                    });
                    break 'join;
                }
            }
        }
    }

    let mut selects = Vec::new();
    let n_sel = rng.gen_range(1usize..3);
    for _ in 0..n_sel {
        let var = rng.gen_range(0usize..var_classes.len());
        let attrs = spec.chain_attrs(var_classes[var]);
        if !attrs.is_empty() && rng.gen_bool(0.6) {
            let a = attrs[rng.gen_range(0usize..attrs.len())];
            selects.push((var, Some(a.name.clone())));
        } else {
            selects.push((var, None));
        }
    }

    spec.query = QuerySpec {
        root,
        hops,
        preds,
        selects,
        distinct: rng.gen_bool(0.2),
    };
    spec
}
