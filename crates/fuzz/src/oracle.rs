//! The answer-set equivalence oracle.
//!
//! [`run_inputs`] runs one rendered case end to end: it populates a store
//! from the IC-consistent recipe, evaluates the original query to get the
//! baseline answer multiset, then checks that *every* artifact the
//! optimizer can emit agrees with it —
//!
//! * each [`sqo_core::EquivalentQuery`] from the parallel Step-3 search,
//! * the sequential search (verdict fingerprints must be byte-identical),
//! * the warm plan-cache path (miss → hit on the same query, then a
//!   constant-shifted sibling through retargeting),
//! * and a [`sqo_core::Verdict::Contradiction`] only when the baseline is actually
//!   empty — a contradiction verdict over a non-empty answer set is a
//!   soundness bug, not an optimization.
//!
//! Invalid cases (parse/translate errors) are reported as `Err(reason)`
//! so the driver can skip them; the generator should make these rare.

use sqo_core::{Backend, CacheOutcome, OptimizationReport, PlanCache, SemanticOptimizer, Verdict};
use sqo_datalog::search::Strategy;
use sqo_datalog::term::Const;
use sqo_datalog::Query;
use sqo_objdb::{execute, execute_with, ExecOptions, ObjectDb};
use sqo_odl::Schema;
use sqo_oql::SelectQuery;

use crate::spec::CaseInputs;

/// Summary of a passing case.
#[derive(Debug, Clone, Default)]
pub struct PassInfo {
    /// Rows in the baseline answer set.
    pub baseline_rows: usize,
    /// Equivalent queries checked (0 when the verdict was a
    /// contradiction).
    pub variants: usize,
    /// Whether the verdict was a (validated) contradiction.
    pub contradiction: bool,
}

/// An equivalence violation, with enough detail to triage.
#[derive(Debug, Clone)]
pub struct Mismatch {
    /// Which check failed (`"equivalent"`, `"contradiction"`,
    /// `"backend"`, `"cache"`, `"sibling"`).
    pub path: String,
    /// Human-readable explanation.
    pub detail: String,
}

/// Outcome of running one case through the oracle.
#[derive(Debug, Clone)]
pub enum CaseStatus {
    /// All artifacts agreed with the baseline.
    Pass(PassInfo),
    /// Some artifact disagreed.
    Mismatch(Mismatch),
}

impl CaseStatus {
    /// Whether this is a pass.
    pub fn is_pass(&self) -> bool {
        matches!(self, CaseStatus::Pass(_))
    }
}

/// Why one evaluation could not produce a trusted answer set: the case is
/// invalid (skip it), or the two executors disagreed (a soundness bug).
enum EvalFailure {
    Invalid(String),
    Mismatch(Box<Mismatch>),
}

/// Evaluate `q` under BOTH the indexed and the scan-only executor; the
/// two must agree on the sorted answer set *and* on whether evaluation
/// errors at all (range probes must not suppress incomparable-operand
/// errors). Every oracle evaluation is therefore also an access-path
/// differential test.
fn answers(db: &ObjectDb, q: &Query) -> Result<Vec<Vec<Const>>, EvalFailure> {
    let indexed = execute(db, q);
    let scan = execute_with(db, q, ExecOptions::scan_only());
    match (indexed, scan) {
        (Ok((mut rows, _)), Ok((mut scan_rows, _))) => {
            rows.sort();
            scan_rows.sort();
            if rows != scan_rows {
                return Err(EvalFailure::Mismatch(Box::new(Mismatch {
                    path: "index-differential".to_string(),
                    detail: format!(
                        "indexed execution returned {} rows but scan-only returned {} for [{q}]",
                        rows.len(),
                        scan_rows.len()
                    ),
                })));
            }
            Ok(rows)
        }
        (Err(a), Err(_)) => Err(EvalFailure::Invalid(format!("execute: {a}"))),
        (Ok((rows, _)), Err(e)) => Err(EvalFailure::Mismatch(Box::new(Mismatch {
            path: "index-differential".to_string(),
            detail: format!(
                "indexed execution returned {} rows but scan-only errored ({e}) for [{q}]",
                rows.len()
            ),
        }))),
        (Err(e), Ok((rows, _))) => Err(EvalFailure::Mismatch(Box::new(Mismatch {
            path: "index-differential".to_string(),
            detail: format!(
                "scan-only execution returned {} rows but indexed errored ({e}) for [{q}]",
                rows.len()
            ),
        }))),
    }
}

/// [`answers`] adapted to the `Result<Option<Mismatch>, String>` shape of
/// the report checks: a differential mismatch becomes the early `Some`.
fn answers_or_mismatch(
    db: &ObjectDb,
    q: &Query,
) -> Result<Result<Vec<Vec<Const>>, Mismatch>, String> {
    match answers(db, q) {
        Ok(rows) => Ok(Ok(rows)),
        Err(EvalFailure::Mismatch(m)) => Ok(Err(*m)),
        Err(EvalFailure::Invalid(s)) => Err(s),
    }
}

/// A stable fingerprint of a report's verdict: contradictions by
/// (ic, note), equivalents by their Datalog renderings in order.
fn fingerprint(report: &OptimizationReport) -> String {
    match &report.verdict {
        Verdict::Contradiction { ic_name, note, .. } => {
            format!("contradiction ic={ic_name:?} note={note}")
        }
        Verdict::Equivalents(eqs) => eqs
            .iter()
            .map(|e| e.datalog.to_string())
            .collect::<Vec<_>>()
            .join("\n"),
    }
}

fn build_optimizer(inputs: &CaseInputs) -> Result<SemanticOptimizer, String> {
    let mut opt = SemanticOptimizer::from_odl(&inputs.odl).map_err(|e| format!("odl: {e}"))?;
    for ic in &inputs.ics {
        opt.add_constraint_text(ic)
            .map_err(|e| format!("ic: {e}"))?;
    }
    Ok(opt)
}

/// Check every equivalent in `report` against `baseline`; on the
/// contradiction verdict, check the baseline is empty instead.
fn check_report(
    db: &ObjectDb,
    report: &OptimizationReport,
    baseline: &[Vec<Const>],
    path: &str,
) -> Result<Option<Mismatch>, String> {
    match &report.verdict {
        Verdict::Contradiction { ic_name, note, .. } => {
            if !baseline.is_empty() {
                return Ok(Some(Mismatch {
                    path: "contradiction".to_string(),
                    detail: format!(
                        "{path}: verdict Contradiction (ic={ic_name:?}, note={note}) but the \
                         store returns {} answer rows",
                        baseline.len()
                    ),
                }));
            }
            Ok(None)
        }
        Verdict::Equivalents(eqs) => {
            for (i, eq) in eqs.iter().enumerate() {
                let rows = match answers_or_mismatch(db, &eq.datalog)? {
                    Ok(rows) => rows,
                    Err(m) => return Ok(Some(m)),
                };
                if rows != baseline {
                    return Ok(Some(Mismatch {
                        path: path.to_string(),
                        detail: format!(
                            "{path}: equivalent #{i} [{}] returned {} rows vs baseline {} \
                             (steps: {})",
                            eq.datalog,
                            rows.len(),
                            baseline.len(),
                            eq.steps
                                .iter()
                                .map(|s| s.op.to_string())
                                .collect::<Vec<_>>()
                                .join(", "),
                        ),
                    }));
                }
            }
            Ok(None)
        }
    }
}

/// Durability round-trip: save the populated store into a fresh on-disk
/// directory, recover it through the snapshot + WAL path, and require
/// the recovered store to return the baseline answer set for the
/// original query and every emitted equivalent. Any divergence —
/// including an evaluation error that did not occur on the live store —
/// is a recovery mismatch, not a skip.
fn check_recovery(
    inputs: &CaseInputs,
    db: &ObjectDb,
    report: &OptimizationReport,
    baseline_query: &Query,
    baseline: &[Vec<Const>],
) -> Result<Option<Mismatch>, String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "sqo-fuzz-recover-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let outcome = (|| {
        if let Err(e) = db.save_to(&dir, 4) {
            return Ok(Some(Mismatch {
                path: "recovery".to_string(),
                detail: format!("saving the store failed: {e}"),
            }));
        }
        let schema = Schema::parse(&inputs.odl).map_err(|e| format!("schema: {e}"))?;
        let recovered = match ObjectDb::open(schema, &dir, 4) {
            Ok(db) => db,
            Err(e) => {
                return Ok(Some(Mismatch {
                    path: "recovery".to_string(),
                    detail: format!("recovering the saved store failed: {e}"),
                }))
            }
        };
        let mut queries: Vec<(String, &Query)> = vec![("baseline".to_string(), baseline_query)];
        if let Verdict::Equivalents(eqs) = &report.verdict {
            for (i, eq) in eqs.iter().enumerate() {
                queries.push((format!("equivalent #{i}"), &eq.datalog));
            }
        }
        for (label, q) in queries {
            let rows = match answers(&recovered, q) {
                Ok(rows) => rows,
                Err(EvalFailure::Mismatch(mut m)) => {
                    m.path = "recovery".to_string();
                    return Ok(Some(*m));
                }
                // The live store evaluated this query fine, so an error
                // here means recovery corrupted the data.
                Err(EvalFailure::Invalid(e)) => {
                    return Ok(Some(Mismatch {
                        path: "recovery".to_string(),
                        detail: format!("{label} failed to evaluate on the recovered store: {e}"),
                    }))
                }
            };
            if rows != baseline {
                return Ok(Some(Mismatch {
                    path: "recovery".to_string(),
                    detail: format!(
                        "{label} [{q}] returned {} rows on the recovered store vs {} on the \
                         live store",
                        rows.len(),
                        baseline.len()
                    ),
                }));
            }
        }
        Ok(None)
    })();
    let _ = std::fs::remove_dir_all(&dir);
    outcome
}

/// Run one rendered case through every differential check under the
/// default Step-3 search strategy.
pub fn run_inputs(inputs: &CaseInputs) -> Result<CaseStatus, String> {
    run_inputs_with(inputs, Strategy::default())
}

/// Run one rendered case through every differential check with an
/// explicit Step-3 search strategy (`--search=bfs|best-first`), so the
/// whole answer-set oracle can be replayed under either engine.
pub fn run_inputs_with(inputs: &CaseInputs, strategy: Strategy) -> Result<CaseStatus, String> {
    run_inputs_full(inputs, strategy, false)
}

/// [`run_inputs_with`] plus, when `recovery` is set, a durability
/// round-trip (save → recover → re-answer). The driver samples which seeds pay
/// for the save + recover; shrink and replay keep the flag so recovery
/// mismatches stay reproducible end to end.
pub fn run_inputs_full(
    inputs: &CaseInputs,
    strategy: Strategy,
    recovery: bool,
) -> Result<CaseStatus, String> {
    // Store population (IC-consistent by construction).
    let schema = Schema::parse(&inputs.odl).map_err(|e| format!("schema: {e}"))?;
    let data = inputs
        .population
        .build(schema)
        .map_err(|e| format!("populate: {e}"))?;
    let db = &data.db;

    // Baseline: the original query, translated but untouched by Step 3.
    let mut opt = build_optimizer(inputs)?;
    opt.set_search_strategy(strategy);
    let query: SelectQuery = sqo_oql::parse_oql(&inputs.oql).map_err(|e| format!("oql: {e}"))?;
    let translation = opt
        .translate(&query)
        .map_err(|e| format!("translate: {e}"))?;
    let baseline = match answers_or_mismatch(db, &translation.query)? {
        Ok(rows) => rows,
        Err(m) => return Ok(CaseStatus::Mismatch(m)),
    };

    // Parallel and sequential searches must agree verdict-for-verdict.
    let report_par = opt
        .optimize_query_backend(&query, Backend::Parallel)
        .map_err(|e| format!("optimize(parallel): {e}"))?;
    let report_seq = opt
        .optimize_query_backend(&query, Backend::Sequential)
        .map_err(|e| format!("optimize(sequential): {e}"))?;
    let fp_par = fingerprint(&report_par);
    let fp_seq = fingerprint(&report_seq);
    if fp_par != fp_seq {
        return Ok(CaseStatus::Mismatch(Mismatch {
            path: "backend".to_string(),
            detail: format!(
                "parallel and sequential searches disagree:\n--- parallel ---\n{fp_par}\n--- \
                 sequential ---\n{fp_seq}"
            ),
        }));
    }

    // Every equivalent (and any contradiction verdict) vs the baseline.
    if let Some(m) = check_report(db, &report_par, &baseline, "equivalent")? {
        return Ok(CaseStatus::Mismatch(m));
    }

    // Warm plan-cache path: miss, then hit, on the very same query.
    let prepared = {
        let mut o = build_optimizer(inputs)?;
        o.set_search_strategy(strategy);
        o.prepare()
    };
    let cache = PlanCache::new();
    let (_, first) = prepared
        .optimize_query_cached(&cache, &query)
        .map_err(|e| format!("cache(miss): {e}"))?;
    if first != CacheOutcome::Miss {
        return Err(format!("expected cold cache miss, got {}", first.label()));
    }
    let (hit_report, second) = prepared
        .optimize_query_cached(&cache, &query)
        .map_err(|e| format!("cache(hit): {e}"))?;
    if second == CacheOutcome::Miss {
        return Err("expected warm cache hit, got miss".to_string());
    }
    let fp_hit = fingerprint(&hit_report);
    if fp_hit != fp_par {
        return Ok(CaseStatus::Mismatch(Mismatch {
            path: "cache".to_string(),
            detail: format!(
                "warm cached plan disagrees with cold search:\n--- cold ---\n{fp_par}\n--- \
                 cached ---\n{fp_hit}"
            ),
        }));
    }
    if let Some(m) = check_report(db, &hit_report, &baseline, "cache")? {
        return Ok(CaseStatus::Mismatch(m));
    }

    // Constant-shifted sibling through the warm cache: the retargeted
    // rewrites must agree with the sibling's own baseline.
    if let Some(sib_src) = &inputs.sibling_oql {
        let sib: SelectQuery =
            sqo_oql::parse_oql(sib_src).map_err(|e| format!("sibling oql: {e}"))?;
        let sib_translation = opt
            .translate(&sib)
            .map_err(|e| format!("sibling translate: {e}"))?;
        let sib_baseline = match answers_or_mismatch(db, &sib_translation.query)? {
            Ok(rows) => rows,
            Err(m) => return Ok(CaseStatus::Mismatch(m)),
        };
        let (sib_report, _outcome) = prepared
            .optimize_query_cached(&cache, &sib)
            .map_err(|e| format!("cache(sibling): {e}"))?;
        if let Some(mut m) = check_report(db, &sib_report, &sib_baseline, "sibling")? {
            if m.path == "contradiction" {
                m.path = "sibling".to_string();
            }
            return Ok(CaseStatus::Mismatch(m));
        }
    }

    // Sampled durability round-trip: save, recover, re-check everything.
    if recovery {
        if let Some(m) = check_recovery(inputs, db, &report_par, &translation.query, &baseline)? {
            return Ok(CaseStatus::Mismatch(m));
        }
    }

    let (variants, contradiction) = match &report_par.verdict {
        Verdict::Contradiction { .. } => (0, true),
        Verdict::Equivalents(eqs) => (eqs.len(), false),
    };
    Ok(CaseStatus::Pass(PassInfo {
        baseline_rows: baseline.len(),
        variants,
        contradiction,
    }))
}
