//! Self-contained `.repro` case files.
//!
//! A repro file captures everything the oracle consumes — schema, ICs,
//! population recipe, query — plus the expected status, in a sectioned
//! plain-text format that diffs well and needs no external parser:
//!
//! ```text
//! sqo-fuzz repro v1
//! seed = 42
//! expect = pass
//!
//! [schema]
//! interface C0 { … };
//!
//! [ics]
//! ic F0: V >= 5 <- c0(OID, V).
//!
//! [population]
//! count C0 = 8
//! int a0_0 = 5..100        # inclusive bounds
//! str a0_1 = alpha, beta
//! unique a0_k
//! links = 2
//! popseed = 42
//!
//! [query]
//! select x0 from x0 in C0
//!
//! [sibling]
//! select …                 # optional
//! ```
//!
//! `expect = mismatch` marks committed *regression* reproducers of bugs
//! that were fixed (replay fails if the oracle no longer flags them) or
//! deliberately inconsistent fixtures proving the oracle detects unsound
//! rewrites.

use crate::oracle::{run_inputs_full, CaseStatus};
use crate::spec::CaseInputs;
use sqo_objdb::GenericConfig;
use std::collections::{BTreeMap, BTreeSet};

const HEADER: &str = "sqo-fuzz repro v1";

/// What a repro file asserts the oracle reports for its case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// All differential checks pass.
    Pass,
    /// The oracle flags an equivalence mismatch.
    Mismatch,
}

impl Expect {
    fn text(self) -> &'static str {
        match self {
            Expect::Pass => "pass",
            Expect::Mismatch => "mismatch",
        }
    }
}

/// A parsed repro case.
#[derive(Debug, Clone)]
pub struct ReproCase {
    /// Generator seed (informational — the case is fully rendered).
    pub seed: u64,
    /// Expected oracle status.
    pub expect: Expect,
    /// The rendered inputs.
    pub inputs: CaseInputs,
}

/// Render a repro file.
pub fn render(seed: u64, expect: Expect, inputs: &CaseInputs) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("seed = {seed}\n"));
    out.push_str(&format!("expect = {}\n", expect.text()));
    out.push_str("\n[schema]\n");
    out.push_str(inputs.odl.trim_end());
    out.push_str("\n\n[ics]\n");
    for ic in &inputs.ics {
        out.push_str(ic);
        out.push('\n');
    }
    out.push_str("\n[population]\n");
    let p = &inputs.population;
    for (class, n) in &p.counts {
        out.push_str(&format!("count {class} = {n}\n"));
    }
    for (attr, (lo, hi)) in &p.int_ranges {
        out.push_str(&format!("int {attr} = {lo}..{hi}\n"));
    }
    for (attr, domain) in &p.str_domains {
        out.push_str(&format!("str {attr} = {}\n", domain.join(", ")));
    }
    for attr in &p.unique_attrs {
        out.push_str(&format!("unique {attr}\n"));
    }
    out.push_str(&format!("links = {}\n", p.links_per_object));
    out.push_str(&format!("popseed = {}\n", p.seed));
    out.push_str("\n[query]\n");
    out.push_str(inputs.oql.trim());
    out.push('\n');
    if let Some(sib) = &inputs.sibling_oql {
        out.push_str("\n[sibling]\n");
        out.push_str(sib.trim());
        out.push('\n');
    }
    out
}

fn kv<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.strip_prefix(key)
        .and_then(|r| r.trim_start().strip_prefix('='))
        .map(str::trim)
}

/// Parse a repro file.
pub fn parse(text: &str) -> Result<ReproCase, String> {
    let mut lines = text.lines();
    if lines.next().map(str::trim) != Some(HEADER) {
        return Err(format!("missing `{HEADER}` header"));
    }

    let mut seed = 0u64;
    let mut expect = Expect::Pass;
    let mut section = String::new();
    let mut schema = String::new();
    let mut ics: Vec<String> = Vec::new();
    let mut counts: Vec<(String, usize)> = Vec::new();
    let mut int_ranges: BTreeMap<String, (i64, i64)> = BTreeMap::new();
    let mut str_domains: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut unique_attrs: BTreeSet<String> = BTreeSet::new();
    let mut links = 1usize;
    let mut popseed = 0u64;
    let mut query_lines: Vec<String> = Vec::new();
    let mut sibling_lines: Vec<String> = Vec::new();

    for raw in lines {
        let line = raw.trim_end();
        let bare = line.trim();
        if bare.starts_with('[') && bare.ends_with(']') {
            section = bare[1..bare.len() - 1].to_string();
            continue;
        }
        match section.as_str() {
            "" => {
                if let Some(v) = kv(bare, "seed") {
                    seed = v.parse().map_err(|e| format!("seed: {e}"))?;
                } else if let Some(v) = kv(bare, "expect") {
                    expect = match v {
                        "pass" => Expect::Pass,
                        "mismatch" => Expect::Mismatch,
                        other => return Err(format!("unknown expect `{other}`")),
                    };
                }
            }
            "schema" => {
                schema.push_str(line);
                schema.push('\n');
            }
            "ics" => {
                if !bare.is_empty() {
                    ics.push(bare.to_string());
                }
            }
            "population" => {
                // Strip trailing `# comment`.
                let bare = bare.split('#').next().unwrap_or("").trim();
                if bare.is_empty() {
                    continue;
                }
                if let Some(rest) = bare.strip_prefix("count ") {
                    let (class, n) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("bad count line `{bare}`"))?;
                    counts.push((
                        class.trim().to_string(),
                        n.trim().parse().map_err(|e| format!("count: {e}"))?,
                    ));
                } else if let Some(rest) = bare.strip_prefix("int ") {
                    let (attr, range) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("bad int line `{bare}`"))?;
                    let (lo, hi) = range
                        .trim()
                        .split_once("..")
                        .ok_or_else(|| format!("bad range `{range}`"))?;
                    int_ranges.insert(
                        attr.trim().to_string(),
                        (
                            lo.trim().parse().map_err(|e| format!("range lo: {e}"))?,
                            hi.trim().parse().map_err(|e| format!("range hi: {e}"))?,
                        ),
                    );
                } else if let Some(rest) = bare.strip_prefix("str ") {
                    let (attr, vals) = rest
                        .split_once('=')
                        .ok_or_else(|| format!("bad str line `{bare}`"))?;
                    str_domains.insert(
                        attr.trim().to_string(),
                        vals.split(',').map(|v| v.trim().to_string()).collect(),
                    );
                } else if let Some(attr) = bare.strip_prefix("unique ") {
                    unique_attrs.insert(attr.trim().to_string());
                } else if let Some(v) = kv(bare, "links") {
                    links = v.parse().map_err(|e| format!("links: {e}"))?;
                } else if let Some(v) = kv(bare, "popseed") {
                    popseed = v.parse().map_err(|e| format!("popseed: {e}"))?;
                } else {
                    return Err(format!("unknown population line `{bare}`"));
                }
            }
            "query" => {
                if !bare.is_empty() {
                    query_lines.push(bare.to_string());
                }
            }
            "sibling" => {
                if !bare.is_empty() {
                    sibling_lines.push(bare.to_string());
                }
            }
            other => return Err(format!("unknown section `[{other}]`")),
        }
    }

    if schema.trim().is_empty() {
        return Err("missing [schema] section".to_string());
    }
    if query_lines.is_empty() {
        return Err("missing [query] section".to_string());
    }
    Ok(ReproCase {
        seed,
        expect,
        inputs: CaseInputs {
            odl: schema,
            ics,
            population: GenericConfig {
                counts,
                int_ranges,
                str_domains,
                unique_attrs,
                links_per_object: links,
                seed: popseed,
            },
            oql: query_lines.join(" "),
            sibling_oql: if sibling_lines.is_empty() {
                None
            } else {
                Some(sibling_lines.join(" "))
            },
        },
    })
}

/// Outcome of replaying one repro file.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// What the file asserted.
    pub expected: Expect,
    /// What the oracle observed (`None` when the case errored).
    pub observed: Option<CaseStatus>,
    /// Whether observed matched expected.
    pub ok: bool,
    /// Detail line for logs.
    pub detail: String,
}

/// [`replay_with`] under the default Step-3 search strategy.
pub fn replay(case: &ReproCase) -> ReplayReport {
    replay_with(case, sqo_datalog::search::Strategy::default())
}

/// Replay a parsed repro case through the oracle under an explicit
/// Step-3 search strategy and compare against its expectation. Replays
/// always run the durability round-trip, so recovery mismatches (found
/// on sampled seeds) reproduce from their `.repro` files.
pub fn replay_with(case: &ReproCase, strategy: sqo_datalog::search::Strategy) -> ReplayReport {
    match run_inputs_full(&case.inputs, strategy, true) {
        Err(e) => ReplayReport {
            expected: case.expect,
            observed: None,
            ok: false,
            detail: format!("case invalid: {e}"),
        },
        Ok(status) => {
            let observed = if status.is_pass() {
                Expect::Pass
            } else {
                Expect::Mismatch
            };
            let ok = observed == case.expect;
            let detail = match &status {
                CaseStatus::Pass(info) => format!(
                    "pass ({} baseline rows, {} variants{})",
                    info.baseline_rows,
                    info.variants,
                    if info.contradiction {
                        ", contradiction"
                    } else {
                        ""
                    }
                ),
                CaseStatus::Mismatch(m) => format!("mismatch [{}]: {}", m.path, m.detail),
            };
            ReplayReport {
                expected: case.expect,
                observed: Some(status),
                ok,
                detail,
            }
        }
    }
}
