//! Greedy structural shrinking of a mismatching case.
//!
//! Each pass proposes a smaller [`CaseSpec`]; a candidate is kept only if
//! the oracle still reports a mismatch on it (oracle *errors* mean the
//! candidate is invalid — those are discarded, never kept). Passes repeat
//! until a whole round makes no progress, bounded by a total oracle
//! budget so shrinking can never run away.

use crate::oracle::{run_inputs_full, CaseStatus};
use crate::spec::CaseSpec;
use sqo_datalog::search::Strategy;

/// Hard cap on oracle invocations during one shrink.
const MAX_ORACLE_RUNS: usize = 200;

/// [`shrink_with`] under the default Step-3 search strategy.
pub fn shrink(spec: &CaseSpec) -> CaseSpec {
    shrink_with(spec, Strategy::default())
}

/// [`shrink_full`] without the durability round-trip.
pub fn shrink_with(spec: &CaseSpec, strategy: Strategy) -> CaseSpec {
    shrink_full(spec, strategy, false)
}

/// Shrink `spec` while the oracle keeps reporting a mismatch *under the
/// same strategy (and recovery flag) that found it* — a failure specific
/// to one engine, or to the save/recover path, must not vanish
/// mid-shrink. Returns the smallest mismatching spec found (possibly
/// `spec` unchanged).
pub fn shrink_full(spec: &CaseSpec, strategy: Strategy, recovery: bool) -> CaseSpec {
    let mut best = spec.clone();
    let mut runs = 0usize;

    let still_fails = |candidate: &CaseSpec, runs: &mut usize| -> bool {
        if *runs >= MAX_ORACLE_RUNS {
            return false;
        }
        *runs += 1;
        matches!(
            run_inputs_full(&candidate.inputs(), strategy, recovery),
            Ok(CaseStatus::Mismatch(_))
        )
    };

    loop {
        let mut progressed = false;

        // Drop ICs one at a time.
        let mut i = 0;
        while i < best.ics.len() {
            let mut cand = best.clone();
            cand.ics.remove(i);
            if still_fails(&cand, &mut runs) {
                best = cand;
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Drop where-predicates one at a time.
        let mut i = 0;
        while i < best.query.preds.len() {
            let mut cand = best.clone();
            cand.query.preds.remove(i);
            if still_fails(&cand, &mut runs) {
                best = cand;
                progressed = true;
            } else {
                i += 1;
            }
        }

        // Drop trailing hops (and repair anything referencing the dropped
        // variable).
        while !best.query.hops.is_empty() {
            let mut cand = best.clone();
            cand.query.hops.pop();
            let max_var = cand.query.hops.len();
            cand.query.preds.retain(|p| match p {
                crate::spec::PredSpec::IntCmp { var, .. }
                | crate::spec::PredSpec::StrEq { var, .. } => *var <= max_var,
                crate::spec::PredSpec::AttrJoin { lhs, rhs, .. } => {
                    *lhs <= max_var && *rhs <= max_var
                }
            });
            cand.query.selects.retain(|(v, _)| *v <= max_var);
            if cand.query.selects.is_empty() {
                cand.query.selects.push((0, None));
            }
            if still_fails(&cand, &mut runs) {
                best = cand;
                progressed = true;
            } else {
                break;
            }
        }

        // Halve populations.
        {
            let mut cand = best.clone();
            let mut changed = false;
            for c in &mut cand.classes {
                if c.count > 1 {
                    c.count = c.count.div_ceil(2);
                    changed = true;
                }
            }
            if changed && still_fails(&cand, &mut runs) {
                best = cand;
                progressed = true;
            }
        }

        // Fewer links per object.
        if best.links_per_object > 1 {
            let mut cand = best.clone();
            cand.links_per_object = 1;
            if still_fails(&cand, &mut runs) {
                best = cand;
                progressed = true;
            }
        }

        // Drop relationships the query no longer traverses (remapping hop
        // indices onto the retained list).
        {
            let used: Vec<usize> = {
                let mut u: Vec<usize> = best.query.hops.iter().map(|h| h.rel).collect();
                u.sort_unstable();
                u.dedup();
                u
            };
            if used.len() < best.rels.len() {
                let mut cand = best.clone();
                cand.rels = used.iter().map(|&i| best.rels[i].clone()).collect();
                for h in &mut cand.query.hops {
                    h.rel = used.iter().position(|&i| i == h.rel).unwrap();
                }
                if still_fails(&cand, &mut runs) {
                    best = cand;
                    progressed = true;
                }
            }
        }

        // Drop extra select items and distinct.
        if best.query.selects.len() > 1 {
            let mut cand = best.clone();
            cand.query.selects.truncate(1);
            if still_fails(&cand, &mut runs) {
                best = cand;
                progressed = true;
            }
        }
        if best.query.distinct {
            let mut cand = best.clone();
            cand.query.distinct = false;
            if still_fails(&cand, &mut runs) {
                best = cand;
                progressed = true;
            }
        }

        if !progressed || runs >= MAX_ORACLE_RUNS {
            break;
        }
    }
    best
}
