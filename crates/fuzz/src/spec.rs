//! The structured fuzz-case model.
//!
//! A [`CaseSpec`] is the *generator-level* description of one test case:
//! a random schema (classes, inheritance, relationships, keys), a set of
//! range integrity constraints guaranteed satisfiable by construction, a
//! population recipe, and one conjunctive OQL query. Everything the
//! pipeline consumes is *rendered* from the spec ([`CaseSpec::inputs`]),
//! so the shrinker can edit the structured form and re-render.

use sqo_objdb::GenericConfig;
use sqo_odl::fixtures::{render_schema, InterfaceSketch, RelationshipSketch};
use std::collections::{BTreeMap, BTreeSet};

/// Initial (widest) value interval for every generated integer attribute.
/// Range ICs narrow per-attribute copies of this interval, so population
/// within the final interval satisfies every IC.
pub const INT_INTERVAL: (i64, i64) = (0, 1000);

/// The kind of a generated attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrKind {
    /// `attribute long …` — range ICs and comparisons apply.
    Int,
    /// `attribute string …` — equality predicates apply.
    Str,
}

/// One generated attribute.
#[derive(Debug, Clone)]
pub struct AttrSpec {
    /// Globally unique attribute name (`a{class}_{n}`).
    pub name: String,
    /// Value kind.
    pub kind: AttrKind,
}

/// One generated class.
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class name (`C{i}`, also the extent name).
    pub name: String,
    /// Direct superclass, as an index of an earlier class.
    pub parent: Option<usize>,
    /// Attributes declared on this class (not inherited).
    pub attrs: Vec<AttrSpec>,
    /// Index into `attrs` of a key attribute (always [`AttrKind::Str`];
    /// populated with globally unique values).
    pub key: Option<usize>,
    /// Objects to create with this concrete class.
    pub count: usize,
}

/// One generated relationship pair (forward + declared inverse).
#[derive(Debug, Clone)]
pub struct RelSpec {
    /// Forward member name (declared on `from`).
    pub name: String,
    /// Declaring class index.
    pub from: usize,
    /// Target class index.
    pub to: usize,
    /// Whether the forward side is set-valued.
    pub many: bool,
    /// Inverse member name (declared on `to`).
    pub inv_name: String,
    /// Whether the inverse side is set-valued.
    pub inv_many: bool,
}

/// Comparison operator of a range IC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IcOp {
    /// `>=`
    Ge,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `<`
    Lt,
}

impl IcOp {
    /// Operator surface syntax.
    pub fn text(self) -> &'static str {
        match self {
            IcOp::Ge => ">=",
            IcOp::Gt => ">",
            IcOp::Le => "<=",
            IcOp::Lt => "<",
        }
    }
}

/// One application range IC: `attr op k` for every member of `class`.
#[derive(Debug, Clone)]
pub struct IcSpec {
    /// IC name (`F{n}`).
    pub name: String,
    /// Class whose relation the IC ranges over.
    pub class: usize,
    /// Constrained attribute (anywhere in the class's inheritance chain).
    pub attr: String,
    /// Comparison operator.
    pub op: IcOp,
    /// Threshold.
    pub k: i64,
}

/// One `where` predicate of the generated query.
#[derive(Debug, Clone)]
pub enum PredSpec {
    /// `x{var}.{attr} {op} {k}` over an integer attribute.
    IntCmp {
        /// Query variable index.
        var: usize,
        /// Attribute name.
        attr: String,
        /// OQL comparison operator text.
        op: String,
        /// Constant.
        k: i64,
    },
    /// `x{var}.{attr} = "{value}"` over a string attribute.
    StrEq {
        /// Query variable index.
        var: usize,
        /// Attribute name.
        attr: String,
        /// Constant.
        value: String,
    },
    /// `x{lhs}.{attr} = x{rhs}.{attr}` — a join on a shared attribute
    /// (on a key attribute this is the paper's Application 3 shape).
    AttrJoin {
        /// Left query variable index.
        lhs: usize,
        /// Right query variable index.
        rhs: usize,
        /// Shared attribute name.
        attr: String,
    },
}

/// One path hop: `x{i+1} in x{i}.{member}`.
#[derive(Debug, Clone)]
pub struct HopSpec {
    /// Index into [`CaseSpec::rels`].
    pub rel: usize,
    /// Traverse the forward member (`true`) or the inverse (`false`).
    pub forward: bool,
}

/// The generated conjunctive query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Root class index (`x0 in C{root}`).
    pub root: usize,
    /// Path hops introducing `x1, x2, …`.
    pub hops: Vec<HopSpec>,
    /// `where` conjuncts.
    pub preds: Vec<PredSpec>,
    /// Select items: (variable index, optional attribute).
    pub selects: Vec<(usize, Option<String>)>,
    /// `select distinct`.
    pub distinct: bool,
}

/// Everything the oracle needs to run one case, fully rendered: the
/// lowest-common-denominator form shared by generated specs and replayed
/// `.repro` files.
#[derive(Debug, Clone)]
pub struct CaseInputs {
    /// ODL schema source.
    pub odl: String,
    /// Application IC statements (Datalog constraint syntax).
    pub ics: Vec<String>,
    /// Store population recipe.
    pub population: GenericConfig,
    /// The query under test.
    pub oql: String,
    /// A constant-shifted sibling of `oql` exercising the plan-cache
    /// retarget path, when the query has an integer constant.
    pub sibling_oql: Option<String>,
}

/// One complete fuzz case.
#[derive(Debug, Clone)]
pub struct CaseSpec {
    /// The generator seed that produced this spec.
    pub seed: u64,
    /// Classes, in declaration order (parents precede children).
    pub classes: Vec<ClassSpec>,
    /// Relationship pairs.
    pub rels: Vec<RelSpec>,
    /// Application range ICs.
    pub ics: Vec<IcSpec>,
    /// Final (post-IC-narrowing) population interval per integer
    /// attribute.
    pub int_ranges: BTreeMap<String, (i64, i64)>,
    /// Value pools per plain string attribute.
    pub str_domains: BTreeMap<String, Vec<String>>,
    /// Random links per source object on set-valued relationships.
    pub links_per_object: usize,
    /// The query under test.
    pub query: QuerySpec,
}

impl CaseSpec {
    /// Indices of `class` and its ancestors, root first.
    pub fn chain(&self, class: usize) -> Vec<usize> {
        let mut chain = vec![class];
        let mut cur = class;
        while let Some(p) = self.classes[cur].parent {
            chain.push(p);
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// All attributes visible on `class` (inherited first), mirroring the
    /// Step-1 class-relation argument order.
    pub fn chain_attrs(&self, class: usize) -> Vec<&AttrSpec> {
        self.chain(class)
            .into_iter()
            .flat_map(|i| self.classes[i].attrs.iter())
            .collect()
    }

    /// Render the ODL schema source.
    pub fn odl(&self) -> String {
        let sketches: Vec<InterfaceSketch> = self
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| InterfaceSketch {
                name: c.name.clone(),
                parent: c.parent.map(|p| self.classes[p].name.clone()),
                keys: c.key.iter().map(|&k| c.attrs[k].name.clone()).collect(),
                attributes: c
                    .attrs
                    .iter()
                    .map(|a| {
                        let ty = match a.kind {
                            AttrKind::Int => "long",
                            AttrKind::Str => "string",
                        };
                        (a.name.clone(), ty.to_string())
                    })
                    .collect(),
                relationships: self
                    .rels
                    .iter()
                    .flat_map(|r| {
                        let mut out = Vec::new();
                        if r.from == i {
                            out.push(RelationshipSketch {
                                name: r.name.clone(),
                                target: self.classes[r.to].name.clone(),
                                many: r.many,
                                inverse: r.inv_name.clone(),
                            });
                        }
                        if r.to == i {
                            out.push(RelationshipSketch {
                                name: r.inv_name.clone(),
                                target: self.classes[r.from].name.clone(),
                                many: r.inv_many,
                                inverse: r.name.clone(),
                            });
                        }
                        out
                    })
                    .collect(),
            })
            .collect();
        render_schema(&sketches)
    }

    /// Render the application ICs in Datalog constraint syntax. The body
    /// atom's argument list follows the Step-1 class-relation layout
    /// (OID, then chain attributes inherited-first).
    pub fn ic_texts(&self) -> Vec<String> {
        self.ics
            .iter()
            .map(|ic| {
                let attrs = self.chain_attrs(ic.class);
                let args: Vec<String> = std::iter::once("OID".to_string())
                    .chain(attrs.iter().enumerate().map(|(j, a)| {
                        if a.name == ic.attr {
                            "V".to_string()
                        } else {
                            format!("A{j}")
                        }
                    }))
                    .collect();
                format!(
                    "ic {}: V {} {} <- {}({}).",
                    ic.name,
                    ic.op.text(),
                    ic.k,
                    self.classes[ic.class].name.to_lowercase(),
                    args.join(", ")
                )
            })
            .collect()
    }

    /// Render the population recipe.
    pub fn population(&self) -> GenericConfig {
        let mut unique_attrs = BTreeSet::new();
        for c in &self.classes {
            if let Some(k) = c.key {
                unique_attrs.insert(c.attrs[k].name.clone());
            }
        }
        GenericConfig {
            counts: self
                .classes
                .iter()
                .map(|c| (c.name.clone(), c.count))
                .collect(),
            int_ranges: self.int_ranges.clone(),
            str_domains: self.str_domains.clone(),
            unique_attrs,
            links_per_object: self.links_per_object,
            seed: self.seed,
        }
    }

    /// The class index bound to each query variable (`x0, x1, …`).
    pub fn var_classes(&self) -> Vec<usize> {
        let mut out = vec![self.query.root];
        for h in &self.query.hops {
            let r = &self.rels[h.rel];
            out.push(if h.forward { r.to } else { r.from });
        }
        out
    }

    /// Render the OQL query.
    pub fn oql(&self) -> String {
        self.render_oql(&self.query)
    }

    fn render_oql(&self, q: &QuerySpec) -> String {
        let mut out = String::from("select ");
        if q.distinct {
            out.push_str("distinct ");
        }
        let items: Vec<String> = q
            .selects
            .iter()
            .map(|(v, attr)| match attr {
                Some(a) => format!("x{v}.{a}"),
                None => format!("x{v}"),
            })
            .collect();
        out.push_str(&items.join(", "));
        out.push_str(&format!(" from x0 in {}", self.classes[q.root].name));
        for (i, h) in q.hops.iter().enumerate() {
            let r = &self.rels[h.rel];
            let member = if h.forward { &r.name } else { &r.inv_name };
            out.push_str(&format!(", x{} in x{}.{}", i + 1, i, member));
        }
        let preds: Vec<String> = q
            .preds
            .iter()
            .map(|p| match p {
                PredSpec::IntCmp { var, attr, op, k } => format!("x{var}.{attr} {op} {k}"),
                PredSpec::StrEq { var, attr, value } => format!("x{var}.{attr} = \"{value}\""),
                PredSpec::AttrJoin { lhs, rhs, attr } => {
                    format!("x{lhs}.{attr} = x{rhs}.{attr}")
                }
            })
            .collect();
        if !preds.is_empty() {
            out.push_str(" where ");
            out.push_str(&preds.join(" and "));
        }
        out
    }

    /// A sibling query that shifts the first integer constant by one
    /// (staying a distinct value) — same canonical template, different
    /// parameters, so a warm plan cache must retarget.
    pub fn sibling_oql(&self) -> Option<String> {
        let mut q = self.query.clone();
        for p in &mut q.preds {
            if let PredSpec::IntCmp { k, .. } = p {
                *k += 1;
                return Some(self.render_oql(&q));
            }
        }
        None
    }

    /// Render everything the oracle consumes.
    pub fn inputs(&self) -> CaseInputs {
        CaseInputs {
            odl: self.odl(),
            ics: self.ic_texts(),
            population: self.population(),
            oql: self.oql(),
            sibling_oql: self.sibling_oql(),
        }
    }
}
