#![warn(missing_docs)]

//! # sqo-fuzz
//!
//! Differential semantic-equivalence fuzzing for the SQO pipeline.
//!
//! Semantic query optimization is only an optimization if every rewrite
//! preserves the answer set on every IC-consistent store. This crate
//! checks exactly that, at scale: each seed deterministically generates a
//! random-but-valid ODL schema (inheritance chains, inverse
//! relationships, keys), a set of range ICs *satisfied by construction*
//! by the generated population, and a conjunctive OQL query — then the
//! [`oracle`] runs the full pipeline and asserts that the original
//! query, every [`sqo_core::EquivalentQuery`] the Step-3 search emits
//! (under both the parallel and sequential backends), and the warm
//! plan-cache retargeted path all return identical answer sets against
//! the store. A [`sqo_core::Verdict::Contradiction`] is only accepted
//! when the store's answer set really is empty.
//!
//! On a mismatch the [`shrink`] module greedily minimizes the case and
//! [`repro`] dumps a self-contained `.repro` file replayable with
//! `sqo fuzz --replay <file>`.

pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;
pub mod spec;

use oracle::{CaseStatus, Mismatch};
use sqo_datalog::search::Strategy;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Result of running one seed end to end.
#[derive(Debug, Clone)]
pub enum SeedOutcome {
    /// All differential checks passed.
    Pass(oracle::PassInfo),
    /// A mismatch was found; carries the *shrunk* spec and its repro
    /// rendering.
    Mismatch {
        /// The failing check.
        mismatch: Mismatch,
        /// The minimized case, rendered as a `.repro` file.
        repro: String,
    },
    /// The generated case was invalid (parse/translate refused it); the
    /// seed is skipped, not failed.
    Skipped(String),
}

/// Generate, run, and (on mismatch) shrink one seed under the default
/// Step-3 search strategy.
pub fn run_seed(seed: u64) -> SeedOutcome {
    run_seed_with(seed, Strategy::default())
}

/// Every `RECOVERY_SAMPLE`th seed also saves its populated store to
/// disk, recovers it through the snapshot + WAL path, and requires the
/// recovered store to reproduce every answer set — a durability
/// differential riding the same oracle.
pub const RECOVERY_SAMPLE: u64 = 4;

/// Generate, run, and (on mismatch) shrink one seed with an explicit
/// Step-3 search strategy, so the whole oracle can be swept under both
/// the best-first engine and the BFS ablation baseline.
pub fn run_seed_with(seed: u64, strategy: Strategy) -> SeedOutcome {
    let spec = gen::generate_case(seed);
    let recovery = seed.is_multiple_of(RECOVERY_SAMPLE);
    match oracle::run_inputs_full(&spec.inputs(), strategy, recovery) {
        Err(e) => SeedOutcome::Skipped(e),
        Ok(CaseStatus::Pass(info)) => SeedOutcome::Pass(info),
        Ok(CaseStatus::Mismatch(_)) => {
            let small = shrink::shrink_full(&spec, strategy, recovery);
            // Re-run the minimized case to report its (possibly clearer)
            // mismatch rather than the original's.
            let mismatch = match oracle::run_inputs_full(&small.inputs(), strategy, recovery) {
                Ok(CaseStatus::Mismatch(m)) => m,
                // Shrinking never keeps a non-failing candidate, so this
                // arm only guards against oracle nondeterminism.
                _ => Mismatch {
                    path: "unstable".to_string(),
                    detail: "mismatch did not reproduce on the shrunk case".to_string(),
                },
            };
            let repro = repro::render(seed, repro::Expect::Mismatch, &small.inputs());
            SeedOutcome::Mismatch { mismatch, repro }
        }
    }
}

fn parse_seed_range(s: &str) -> Result<(u64, u64), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("expected A..B, got `{s}`"))?;
    let lo: u64 = a
        .trim()
        .parse()
        .map_err(|e| format!("bad range start: {e}"))?;
    let hi: u64 = b
        .trim()
        .parse()
        .map_err(|e| format!("bad range end: {e}"))?;
    if lo >= hi {
        return Err(format!("empty seed range {lo}..{hi}"));
    }
    Ok((lo, hi))
}

fn parse_budget(s: &str) -> Result<Duration, String> {
    let t = s.trim();
    let secs: u64 = t
        .strip_suffix('s')
        .unwrap_or(t)
        .parse()
        .map_err(|e| format!("bad budget `{t}`: {e}"))?;
    Ok(Duration::from_secs(secs))
}

fn replay_paths(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_dir() {
        let mut out: Vec<PathBuf> = std::fs::read_dir(path)
            .map_err(|e| format!("read_dir {}: {e}", path.display()))?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "repro"))
            .collect();
        out.sort();
        if out.is_empty() {
            return Err(format!("no .repro files under {}", path.display()));
        }
        Ok(out)
    } else {
        Ok(vec![path.to_path_buf()])
    }
}

/// [`replay_path_with`] under the default Step-3 search strategy.
pub fn replay_path(path: &Path) -> Result<usize, String> {
    replay_path_with(path, Strategy::default())
}

/// Replay every `.repro` file at `path` (a file or a directory) under an
/// explicit Step-3 search strategy. Returns the number of files whose
/// observed status did not match their expectation.
pub fn replay_path_with(path: &Path, strategy: Strategy) -> Result<usize, String> {
    let mut failures = 0usize;
    for p in replay_paths(path)? {
        let text = std::fs::read_to_string(&p).map_err(|e| format!("read {}: {e}", p.display()))?;
        let case = repro::parse(&text).map_err(|e| format!("{}: {e}", p.display()))?;
        let report = repro::replay_with(&case, strategy);
        let tag = if report.ok { "ok" } else { "FAIL" };
        println!(
            "replay {} [{tag}] expected {}, observed: {}",
            p.display(),
            match report.expected {
                repro::Expect::Pass => "pass",
                repro::Expect::Mismatch => "mismatch",
            },
            report.detail
        );
        if !report.ok {
            failures += 1;
        }
    }
    Ok(failures)
}

/// Write `n` generated cases under `dir` as `case{i}.odl` / `case{i}.ic`
/// / `case{i}.oql` triples (consumed by the service smoke test). Skips
/// seeds the oracle refuses, so exactly `n` valid cases are emitted.
pub fn emit_cases(n: usize, dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let mut emitted = 0usize;
    let mut seed = 0u64;
    while emitted < n {
        if seed > 10_000 {
            return Err("could not find enough valid seeds".to_string());
        }
        let spec = gen::generate_case(seed);
        seed += 1;
        let inputs = spec.inputs();
        if oracle::run_inputs(&inputs).is_err() {
            continue;
        }
        let base = dir.join(format!("case{emitted}"));
        std::fs::write(base.with_extension("odl"), &inputs.odl)
            .map_err(|e| format!("write: {e}"))?;
        std::fs::write(base.with_extension("ic"), inputs.ics.join("\n") + "\n")
            .map_err(|e| format!("write: {e}"))?;
        std::fs::write(
            base.with_extension("oql"),
            inputs.oql.trim().to_string() + "\n",
        )
        .map_err(|e| format!("write: {e}"))?;
        emitted += 1;
    }
    Ok(())
}

/// Entry point shared by the `sqo-fuzz` binary and the `sqo fuzz`
/// subcommand. Returns the process exit code: 0 on success, 1 on any
/// equivalence mismatch or replay failure, 2 on usage errors.
pub fn cli_main(args: &[String]) -> i32 {
    let mut seeds = (0u64, 100u64);
    let mut budget: Option<Duration> = None;
    let mut replay: Option<PathBuf> = None;
    let mut save: Option<PathBuf> = None;
    let mut emit: Option<usize> = None;
    let mut out_dir = PathBuf::from("fuzz-out");
    let mut dump_dir = PathBuf::from("fuzz-failures");
    let mut strategy = Strategy::default();

    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let r: Result<(), String> = match a.as_str() {
            "--seeds" => val("--seeds").and_then(|v| {
                seeds = parse_seed_range(&v)?;
                Ok(())
            }),
            "--budget" => val("--budget").and_then(|v| {
                budget = Some(parse_budget(&v)?);
                Ok(())
            }),
            "--replay" => val("--replay").map(|v| {
                replay = Some(PathBuf::from(v));
            }),
            "--save" => val("--save").map(|v| {
                save = Some(PathBuf::from(v));
            }),
            "--emit-cases" => val("--emit-cases").and_then(|v| {
                emit = Some(v.parse().map_err(|e| format!("bad --emit-cases: {e}"))?);
                Ok(())
            }),
            "--out" => val("--out").map(|v| {
                out_dir = PathBuf::from(v);
            }),
            "--dump-dir" => val("--dump-dir").map(|v| {
                dump_dir = PathBuf::from(v);
            }),
            "--search" => val("--search").and_then(|v| {
                strategy = Strategy::parse(&v)
                    .ok_or_else(|| format!("bad --search `{v}` (bfs|best-first)"))?;
                Ok(())
            }),
            s if s.starts_with("--search=") => {
                let v = &s["--search=".len()..];
                match Strategy::parse(v) {
                    Some(st) => {
                        strategy = st;
                        Ok(())
                    }
                    None => Err(format!("bad --search `{v}` (bfs|best-first)")),
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: sqo-fuzz [--seeds A..B] [--budget 60s] [--replay FILE|DIR]\n\
                     \x20               [--save DIR] [--emit-cases N --out DIR] [--dump-dir DIR]\n\
                     \x20               [--search bfs|best-first]"
                );
                return 0;
            }
            other => Err(format!("unknown flag `{other}`")),
        };
        if let Err(e) = r {
            eprintln!("sqo-fuzz: {e}");
            return 2;
        }
    }

    if let Some(path) = replay {
        return match replay_path_with(&path, strategy) {
            Ok(0) => {
                println!("replay: all cases matched their expectations");
                0
            }
            Ok(n) => {
                eprintln!("replay: {n} case(s) FAILED");
                1
            }
            Err(e) => {
                eprintln!("sqo-fuzz: {e}");
                2
            }
        };
    }

    if let Some(dir) = save {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("sqo-fuzz: mkdir {}: {e}", dir.display());
            return 2;
        }
        let (lo, hi) = seeds;
        let mut written = 0usize;
        for seed in lo..hi {
            let spec = gen::generate_case(seed);
            let inputs = spec.inputs();
            let expect = match oracle::run_inputs_with(&inputs, strategy) {
                Err(_) => continue, // invalid case: nothing worth pinning
                Ok(CaseStatus::Pass(_)) => repro::Expect::Pass,
                Ok(CaseStatus::Mismatch(_)) => repro::Expect::Mismatch,
            };
            let path = dir.join(format!("seed{seed}.repro"));
            if let Err(e) = std::fs::write(&path, repro::render(seed, expect, &inputs)) {
                eprintln!("sqo-fuzz: write {}: {e}", path.display());
                return 2;
            }
            written += 1;
        }
        println!("saved {written} repro cases under {}", dir.display());
        return 0;
    }

    if let Some(n) = emit {
        return match emit_cases(n, &out_dir) {
            Ok(()) => {
                println!("emitted {n} cases under {}", out_dir.display());
                0
            }
            Err(e) => {
                eprintln!("sqo-fuzz: {e}");
                2
            }
        };
    }

    let start = Instant::now();
    let (lo, hi) = seeds;
    let mut passed = 0usize;
    let mut skipped = 0usize;
    let mut contradictions = 0usize;
    let mut variants = 0usize;
    let mut mismatches = 0usize;
    let mut ran = 0u64;
    for seed in lo..hi {
        if let Some(b) = budget {
            if start.elapsed() >= b {
                println!("budget exhausted after {} of {} seeds", seed - lo, hi - lo);
                break;
            }
        }
        ran += 1;
        match run_seed_with(seed, strategy) {
            SeedOutcome::Pass(info) => {
                passed += 1;
                variants += info.variants;
                if info.contradiction {
                    contradictions += 1;
                }
            }
            SeedOutcome::Skipped(reason) => {
                skipped += 1;
                println!("seed {seed}: skipped ({reason})");
            }
            SeedOutcome::Mismatch { mismatch, repro } => {
                mismatches += 1;
                eprintln!(
                    "seed {seed}: MISMATCH [{}] {}",
                    mismatch.path, mismatch.detail
                );
                if let Err(e) = std::fs::create_dir_all(&dump_dir) {
                    eprintln!("sqo-fuzz: cannot create {}: {e}", dump_dir.display());
                } else {
                    let path = dump_dir.join(format!("seed{seed}.repro"));
                    match std::fs::write(&path, &repro) {
                        Ok(()) => eprintln!("  minimized repro written to {}", path.display()),
                        Err(e) => eprintln!("sqo-fuzz: cannot write repro: {e}"),
                    }
                }
            }
        }
    }
    println!(
        "fuzz[{}]: {ran} seeds — {passed} passed ({variants} equivalents checked, \
         {contradictions} validated contradictions), {skipped} skipped, {mismatches} mismatches \
         in {:.1}s",
        strategy.label(),
        start.elapsed().as_secs_f64()
    );
    if mismatches > 0 {
        1
    } else {
        0
    }
}
