//! Error types for the durable store.

use std::fmt;

/// Errors produced by the store: I/O failures, on-disk corruption, and
/// invalid logical operations.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk data failed validation (bad magic, checksum mismatch,
    /// truncated field, unknown tag). Recovery never panics on corrupt
    /// input — it surfaces this error (snapshots) or drops the torn
    /// tail (WAL records).
    Corrupt {
        /// Human-readable description of what failed to parse.
        detail: String,
    },
    /// A logical operation could not be applied to the current state
    /// (e.g. `SetAttr` on an OID the store has never seen).
    Invalid {
        /// Human-readable description of the rejected operation.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt { detail } => write!(f, "corrupt store data: {detail}"),
            StoreError::Invalid { detail } => write!(f, "invalid store operation: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;
