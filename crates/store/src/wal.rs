//! Append-only write-ahead log with checksummed, length-prefixed
//! records and torn-tail recovery.
//!
//! Record framing on disk:
//!
//! ```text
//! ┌───────────┬───────────┬───────────────────────────────┐
//! │ len: u32  │ crc: u32  │ payload: [gen: u64][op bytes] │
//! └───────────┴───────────┴───────────────────────────────┘
//! ```
//!
//! `len` is the payload length, `crc` is CRC-32 over the payload, and
//! the payload itself starts with the store generation assigned to the
//! mutation, followed by the encoded [`StoreOp`](crate::StoreOp).
//! A reader walks records until it hits end-of-file, a length that
//! overruns the file, or a checksum mismatch — everything from that
//! point on is a *torn tail* (a crash mid-append) and is dropped.

use crate::codec::crc32;
use crate::error::Result;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Framing overhead per record (length prefix + checksum).
const HEADER_BYTES: usize = 8;

/// An open, appendable WAL file.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Open (creating if absent) a WAL file for appending.
    pub fn open(path: &Path) -> Result<Wal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The file this WAL appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one record (a generation-stamped op payload). The record
    /// is framed, checksummed, and handed to the OS in a single write,
    /// so it survives a process kill; it survives power loss only after
    /// the next [`Wal::sync`] (a snapshot does one).
    pub fn append(&mut self, generation: u64, op_bytes: &[u8]) -> Result<()> {
        let mut payload = Vec::with_capacity(8 + op_bytes.len());
        payload.extend_from_slice(&generation.to_le_bytes());
        payload.extend_from_slice(op_bytes);
        let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        sqo_obs::bump(sqo_obs::Counter::StoreWalAppends);
        Ok(())
    }

    /// Flush OS buffers to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }

    /// Discard all records (after they have been folded into a
    /// snapshot).
    pub fn truncate(&mut self) -> Result<()> {
        self.file.set_len(0)?;
        Ok(())
    }
}

/// The result of reading a WAL file back.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Valid records in file order: `(generation, op bytes)`.
    pub records: Vec<(u64, Vec<u8>)>,
    /// Bytes dropped from the tail (0 when the file ended cleanly).
    pub dropped_bytes: u64,
    /// Offset of the first invalid byte — the length the file should be
    /// truncated to before appending resumes.
    pub valid_len: u64,
}

/// Read every valid record from a WAL file. A missing file yields an
/// empty replay. A torn or corrupt tail is detected via the length
/// prefix and checksum and reported, never panicked on.
pub fn read_wal(path: &Path) -> Result<WalReplay> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(WalReplay::default()),
        Err(e) => return Err(e.into()),
    }
    let mut replay = WalReplay::default();
    let mut pos = 0usize;
    while bytes.len() - pos >= HEADER_BYTES {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let body_start = pos + HEADER_BYTES;
        if len < 8 || bytes.len() - body_start < len {
            break; // torn length or truncated payload
        }
        let payload = &bytes[body_start..body_start + len];
        if crc32(payload) != crc {
            break; // torn or corrupted record
        }
        let generation = u64::from_le_bytes(payload[..8].try_into().unwrap());
        replay.records.push((generation, payload[8..].to_vec()));
        pos = body_start + len;
    }
    replay.valid_len = pos as u64;
    replay.dropped_bytes = (bytes.len() - pos) as u64;
    Ok(replay)
}

/// Truncate a WAL file to its last valid record boundary (dropping a
/// torn tail) so appends can safely resume.
pub fn truncate_to(path: &Path, valid_len: u64) -> Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(valid_len)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    #[test]
    fn append_and_read_round_trip() {
        let dir = test_dir("wal_round_trip");
        let path = dir.join("wal-0.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, b"first").unwrap();
        wal.append(2, b"second").unwrap();
        drop(wal);
        let replay = read_wal(&path).unwrap();
        assert_eq!(
            replay.records,
            vec![(1, b"first".to_vec()), (2, b"second".to_vec())]
        );
        assert_eq!(replay.dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_empty() {
        let dir = test_dir("wal_missing");
        let replay = read_wal(&dir.join("nope.log")).unwrap();
        assert!(replay.records.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_at_every_cut_point() {
        let dir = test_dir("wal_torn");
        let path = dir.join("wal-0.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, b"keep me").unwrap();
        let keep_len = std::fs::metadata(&path).unwrap().len();
        wal.append(2, b"torn record payload").unwrap();
        drop(wal);
        let full_len = std::fs::metadata(&path).unwrap().len();
        // Cut the file at every length between the two records: the
        // first record must always survive, the second never.
        for cut in keep_len..full_len {
            std::fs::copy(&path, dir.join("cut.log")).unwrap();
            truncate_to(&dir.join("cut.log"), cut).unwrap();
            let replay = read_wal(&dir.join("cut.log")).unwrap();
            assert_eq!(replay.records, vec![(1, b"keep me".to_vec())], "cut={cut}");
            assert_eq!(replay.valid_len, keep_len);
            assert_eq!(replay.dropped_bytes, cut - keep_len);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_record_stops_replay_without_panic() {
        let dir = test_dir("wal_corrupt");
        let path = dir.join("wal-0.log");
        let mut wal = Wal::open(&path).unwrap();
        wal.append(1, b"good").unwrap();
        wal.append(2, b"flipped").unwrap();
        drop(wal);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF; // flip a payload byte in the second record
        std::fs::write(&path, &bytes).unwrap();
        let replay = read_wal(&path).unwrap();
        assert_eq!(replay.records, vec![(1, b"good".to_vec())]);
        assert!(replay.dropped_bytes > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
