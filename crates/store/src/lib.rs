#![warn(missing_docs)]

//! # sqo-store
//!
//! A durable, sharded, snapshot-isolated object store — the extensional
//! substrate underneath `sqo-objdb`, built on the standard library
//! alone.
//!
//! The paper assumes a resident, static EDB; a production system
//! serving heavy traffic needs the opposite: writers that don't
//! serialize on one map, queries that see a consistent state while
//! writes land, and a store that survives the process. Three mechanisms
//! provide that:
//!
//! * **Sharding** ([`store`]) — objects and relationship pairs are
//!   partitioned into `N` shards by OID hash, each an independently
//!   lockable `RwLock<Arc<ShardData>>`, so concurrent writers touching
//!   different shards never contend.
//! * **Durability** ([`wal`], [`snapshot`]) — every mutation is a
//!   [`StoreOp`] validated against the owning shard and then appended
//!   to that shard's write-ahead log (length-prefixed,
//!   CRC-32-checksummed records) *before* the in-memory state changes;
//!   compound mutations commit as a single atomic [`StoreOp::Batch`]
//!   frame, so a crash persists all of one or none of it;
//!   [`ShardedStore::persist`]
//!   folds the state into a compact versioned binary snapshot and
//!   truncates the logs. Recovery = load the latest snapshot + replay
//!   the WAL tails in generation order; torn or corrupt tail records
//!   are detected by checksum and dropped cleanly, and a corrupt
//!   snapshot is a hard [`StoreError::Corrupt`] — never a panic.
//! * **Snapshot isolation** ([`StoreView`]) — every mutation gets a
//!   globally monotone generation number; a view pins the per-shard
//!   `Arc`s at one generation and stays valid while writers proceed
//!   copy-on-write (`Arc::make_mut` clones a shard only when a pinned
//!   view still references it).
//!
//! Observability: `store.wal_appends`, `store.snapshot_bytes`,
//! `store.recover_ns`, and `store.shard_lock_wait` counters plus
//! `store.recover` histograms flow through [`sqo_obs`].

pub mod codec;
pub mod error;
pub mod op;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::crc32;
pub use error::{Result, StoreError};
pub use op::{StoreOp, StoreValue};
pub use snapshot::{SnapshotData, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use store::{
    AsrRecord, LinkEntry, PersistReport, RecoverReport, ShardData, ShardedStore, StoreView,
    StoredObject,
};
pub use wal::{read_wal, Wal, WalReplay};

/// Create a unique, empty scratch directory for a test.
#[cfg(test)]
pub(crate) fn test_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sqo_store_test_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create test dir");
    dir
}
