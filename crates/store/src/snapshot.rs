//! Versioned binary snapshots: a compact, checksummed serialization of
//! the whole store, written atomically (temp file + rename).
//!
//! File layout (version 1):
//!
//! ```text
//! magic    "SQOS"                          4 bytes
//! version  u32                             format version (= 1)
//! gen      u64                             store generation at the cut
//! next_oid u64                             OID allocator watermark
//! n_shards u32                             shard sections that follow
//! shard*   objects, then link predicates   see below
//! n_asrs   u32 + ASR records
//! crc      u32                             CRC-32 over everything above
//! ```
//!
//! Each shard section is `gen: u64`, `n_objects: u32` followed by
//! `(oid, class, n_attrs, (name, value)*)` entries sorted by OID, then
//! `n_preds: u32` followed by `(pred, n_links, (seq, from, to)*)`
//! entries with predicates sorted by name. Sorting makes the bytes a
//! deterministic function of the logical state.
//!
//! Readers validate the magic, version, and trailing checksum before
//! trusting a single field; any mismatch is a
//! [`StoreError::Corrupt`] with a description, never a panic.

use crate::codec::{crc32, Reader, Writer};
use crate::error::{Result, StoreError};
use crate::store::{AsrRecord, LinkEntry, ShardData, StoredObject};
use std::collections::HashMap;
use std::io::Write as _;
use std::path::Path;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SQOS";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A decoded snapshot: the full logical state at one generation.
#[derive(Debug, Default)]
pub struct SnapshotData {
    /// Store generation at the snapshot cut.
    pub generation: u64,
    /// OID allocator watermark.
    pub next_oid: u64,
    /// Per-shard state (the reader redistributes by OID hash, so the
    /// shard count on disk need not match the shard count in memory).
    pub shards: Vec<ShardData>,
    /// Access-support-relation definitions.
    pub asrs: Vec<AsrRecord>,
}

/// Serialize a snapshot and atomically replace `path` (write to a
/// sibling temp file, fsync, rename, fsync the parent directory so the
/// replacement is durable). Returns the bytes written.
pub fn write_snapshot(path: &Path, data: &SnapshotData) -> Result<u64> {
    let mut w = Writer::new();
    w.u8(SNAPSHOT_MAGIC[0]);
    w.u8(SNAPSHOT_MAGIC[1]);
    w.u8(SNAPSHOT_MAGIC[2]);
    w.u8(SNAPSHOT_MAGIC[3]);
    w.u32(SNAPSHOT_VERSION);
    w.u64(data.generation);
    w.u64(data.next_oid);
    w.u32(data.shards.len() as u32);
    for shard in &data.shards {
        w.u64(shard.generation);
        let mut oids: Vec<&u64> = shard.objects.keys().collect();
        oids.sort_unstable();
        w.u32(oids.len() as u32);
        for oid in oids {
            let obj = &shard.objects[oid];
            w.u64(*oid);
            w.str(&obj.class);
            w.u32(obj.attrs.len() as u32);
            for (name, value) in &obj.attrs {
                w.str(name);
                w.value(value);
            }
        }
        let mut preds: Vec<&String> = shard.links.keys().collect();
        preds.sort_unstable();
        w.u32(preds.len() as u32);
        for pred in preds {
            let entries = &shard.links[pred];
            w.str(pred);
            w.u32(entries.len() as u32);
            for e in entries {
                w.u64(e.seq);
                w.u64(e.from);
                w.u64(e.to);
            }
        }
    }
    w.u32(data.asrs.len() as u32);
    for asr in &data.asrs {
        w.str(&asr.name);
        w.str(&asr.class);
        w.u32(asr.path.len() as u32);
        for p in &asr.path {
            w.str(p);
        }
    }
    let mut bytes = w.into_bytes();
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Fsync the parent directory so the rename itself is durable before
    // the caller truncates any WAL: without this, power loss could
    // surface the old snapshot alongside already-emptied logs, losing
    // acknowledged writes.
    #[cfg(unix)]
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::File::open(parent)?.sync_all()?;
    }
    Ok(bytes.len() as u64)
}

/// Read and validate a snapshot. `Ok(None)` when no snapshot exists
/// yet; [`StoreError::Corrupt`] when the file fails magic, version, or
/// checksum validation.
pub fn read_snapshot(path: &Path) -> Result<Option<SnapshotData>> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    if bytes.len() < 4 + 4 + 8 + 8 + 4 + 4 + 4 {
        return Err(StoreError::Corrupt {
            detail: format!("snapshot too short ({} bytes)", bytes.len()),
        });
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored_crc {
        return Err(StoreError::Corrupt {
            detail: format!(
                "snapshot checksum mismatch (stored {stored_crc:#010x}, computed {:#010x})",
                crc32(body)
            ),
        });
    }
    let mut r = Reader::new(body);
    let magic = [
        r.u8("magic")?,
        r.u8("magic")?,
        r.u8("magic")?,
        r.u8("magic")?,
    ];
    if magic != SNAPSHOT_MAGIC {
        return Err(StoreError::Corrupt {
            detail: format!("bad snapshot magic {magic:?}"),
        });
    }
    let version = r.u32("version")?;
    if version != SNAPSHOT_VERSION {
        return Err(StoreError::Corrupt {
            detail: format!(
                "unsupported snapshot version {version} (supported: {SNAPSHOT_VERSION})"
            ),
        });
    }
    let mut data = SnapshotData {
        generation: r.u64("generation")?,
        next_oid: r.u64("next_oid")?,
        ..SnapshotData::default()
    };
    let n_shards = r.u32("shard count")?;
    for _ in 0..n_shards {
        let mut shard = ShardData {
            generation: r.u64("shard generation")?,
            ..ShardData::default()
        };
        let n_objects = r.u32("object count")?;
        for _ in 0..n_objects {
            let oid = r.u64("oid")?;
            let class = r.str("class")?;
            let n_attrs = r.u32("attr count")?;
            let mut obj = StoredObject {
                class,
                attrs: Default::default(),
            };
            for _ in 0..n_attrs {
                let name = r.str("attr name")?;
                let value = r.value("attr value")?;
                obj.attrs.insert(name, value);
            }
            shard.objects.insert(oid, obj);
        }
        let n_preds = r.u32("pred count")?;
        let mut links: HashMap<String, Vec<LinkEntry>> = HashMap::new();
        for _ in 0..n_preds {
            let pred = r.str("pred")?;
            let n_links = r.u32("link count")?;
            let mut entries = Vec::with_capacity(n_links as usize);
            for _ in 0..n_links {
                entries.push(LinkEntry {
                    seq: r.u64("link seq")?,
                    from: r.u64("link from")?,
                    to: r.u64("link to")?,
                });
            }
            links.insert(pred, entries);
        }
        shard.links = links;
        data.shards.push(shard);
    }
    let n_asrs = r.u32("asr count")?;
    for _ in 0..n_asrs {
        let name = r.str("asr name")?;
        let class = r.str("asr class")?;
        let n_path = r.u32("asr path count")?;
        let mut path = Vec::with_capacity(n_path as usize);
        for _ in 0..n_path {
            path.push(r.str("asr path segment")?);
        }
        data.asrs.push(AsrRecord { name, class, path });
    }
    Ok(Some(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;
    use crate::StoreValue;

    fn sample() -> SnapshotData {
        let mut shard = ShardData {
            generation: 3,
            ..ShardData::default()
        };
        shard.objects.insert(
            1,
            StoredObject {
                class: "Person".into(),
                attrs: [("age".to_string(), StoreValue::Int(30))]
                    .into_iter()
                    .collect(),
            },
        );
        shard.links.insert(
            "takes".into(),
            vec![LinkEntry {
                seq: 2,
                from: 1,
                to: 9,
            }],
        );
        SnapshotData {
            generation: 3,
            next_oid: 10,
            shards: vec![shard, ShardData::default()],
            asrs: vec![AsrRecord {
                name: "asr1".into(),
                class: "Student".into(),
                path: vec!["takes".into()],
            }],
        }
    }

    #[test]
    fn snapshot_round_trip() {
        let dir = test_dir("snap_round_trip");
        let path = dir.join("snapshot.bin");
        let bytes = write_snapshot(&path, &sample()).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let back = read_snapshot(&path).unwrap().unwrap();
        assert_eq!(back.generation, 3);
        assert_eq!(back.next_oid, 10);
        assert_eq!(back.shards.len(), 2);
        assert_eq!(back.shards[0].objects[&1].class, "Person");
        assert_eq!(back.shards[0].links["takes"][0].to, 9);
        assert_eq!(back.asrs[0].name, "asr1");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = test_dir("snap_missing");
        assert!(read_snapshot(&dir.join("snapshot.bin")).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_single_byte_flip_is_rejected_cleanly() {
        let dir = test_dir("snap_flip");
        let path = dir.join("snapshot.bin");
        write_snapshot(&path, &sample()).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip one byte at a time across the whole file: the reader
        // must reject every variant with Corrupt — no panic, no
        // silently-wrong data.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            match read_snapshot(&path) {
                Err(StoreError::Corrupt { .. }) => {}
                other => panic!("flip at byte {i}: expected Corrupt, got {other:?}"),
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_snapshot_is_rejected() {
        let dir = test_dir("snap_trunc");
        let path = dir.join("snapshot.bin");
        write_snapshot(&path, &sample()).unwrap();
        let good = std::fs::read(&path).unwrap();
        for cut in [0, 1, 10, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(
                matches!(read_snapshot(&path), Err(StoreError::Corrupt { .. })),
                "cut={cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
