//! Binary encoding shared by the WAL and the snapshot format.
//!
//! Everything on disk is built from five primitives — `u8`, `u32`/`u64`
//! little-endian, IEEE-754 `f64` bits, and length-prefixed UTF-8 strings
//! — plus a CRC-32 (IEEE polynomial) checksum over each framed unit.
//! The encoding is deliberately boring: no varints, no compression, no
//! zero-copy tricks. A record is readable with a hex dump and a copy of
//! this file.

use crate::error::{Result, StoreError};
use crate::StoreValue;

/// CRC-32 (IEEE 802.3 polynomial, reflected) lookup table, built at
/// compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 checksum (IEEE polynomial) of a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Append-only byte writer over a `Vec<u8>`.
#[derive(Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    pub fn value(&mut self, v: &StoreValue) {
        match v {
            StoreValue::Int(i) => {
                self.u8(0);
                self.i64(*i);
            }
            StoreValue::Real(r) => {
                self.u8(1);
                self.f64(*r);
            }
            StoreValue::Str(s) => {
                self.u8(2);
                self.str(s);
            }
            StoreValue::Bool(b) => {
                self.u8(3);
                self.u8(*b as u8);
            }
            StoreValue::Obj(o) => {
                self.u8(4);
                self.u64(*o);
            }
        }
    }
}

/// Bounds-checked byte reader; every truncation or malformed field is a
/// [`StoreError::Corrupt`] rather than a panic.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(StoreError::Corrupt {
                detail: format!(
                    "truncated {what}: need {n} bytes at offset {}, have {}",
                    self.pos,
                    self.buf.len() - self.pos
                ),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        self.take(n, what)
    }

    pub fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn i64(&mut self, what: &str) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    pub fn f64(&mut self, what: &str) -> Result<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(
            self.take(8, what)?.try_into().unwrap(),
        )))
    }

    pub fn str(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt {
            detail: format!("{what}: invalid UTF-8 string"),
        })
    }

    pub fn value(&mut self, what: &str) -> Result<StoreValue> {
        Ok(match self.u8(what)? {
            0 => StoreValue::Int(self.i64(what)?),
            1 => StoreValue::Real(self.f64(what)?),
            2 => StoreValue::Str(self.str(what)?),
            3 => StoreValue::Bool(self.u8(what)? != 0),
            4 => StoreValue::Obj(self.u64(what)?),
            tag => {
                return Err(StoreError::Corrupt {
                    detail: format!("{what}: unknown value tag {tag}"),
                })
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_round_trip() {
        let values = vec![
            StoreValue::Int(-42),
            StoreValue::Real(3.5),
            StoreValue::Str("héllo".into()),
            StoreValue::Bool(true),
            StoreValue::Obj(u64::MAX),
        ];
        let mut w = Writer::new();
        for v in &values {
            w.value(v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in &values {
            assert_eq!(&r.value("v").unwrap(), v);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn truncated_reads_error_cleanly() {
        let mut w = Writer::new();
        w.str("hello");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(r.str("s"), Err(StoreError::Corrupt { .. })));
    }
}
