//! The sharded, durable, snapshot-isolated store.
//!
//! State is partitioned into `N` shards by OID hash; each shard is an
//! independently lockable `RwLock<Arc<ShardData>>` with its own
//! append-only WAL file, so writers to different shards never serialize
//! on a common lock. Readers pin **copy-on-write views**: a
//! [`StoreView`] clones the per-shard `Arc`s under brief read locks and
//! stays valid — at its generation — for as long as it lives, while
//! writers proceed via [`Arc::make_mut`] (which clones a shard's state
//! only when a pinned view still references it).
//!
//! Durability = per-shard WAL (written ahead of the in-memory mutation)
//! plus periodic compact snapshots; recovery = load the latest snapshot,
//! then replay every WAL record with a generation beyond the snapshot
//! cut, dropping torn tails. See the crate docs for the exact formats.

use crate::error::{Result, StoreError};
use crate::snapshot::{read_snapshot, write_snapshot, SnapshotData};
use crate::wal::{read_wal, truncate_to, Wal};
use crate::{StoreOp, StoreValue};
use sqo_obs::{add, Counter};
use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// A stored object: its most specific class (or structure) name and its
/// attribute map.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoredObject {
    /// Most specific class or structure name.
    pub class: String,
    /// Attribute values by name.
    pub attrs: BTreeMap<String, StoreValue>,
}

/// One directed relationship pair, stamped with the store generation at
/// which it was inserted so global insertion order can be reconstructed
/// across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkEntry {
    /// Store generation at insertion (globally unique, monotone).
    pub seq: u64,
    /// Source OID.
    pub from: u64,
    /// Target OID.
    pub to: u64,
}

/// An access-support-relation definition, recorded with its original
/// definition-site arguments so the object layer can re-register the
/// view after recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsrRecord {
    /// View name as passed at the definition site.
    pub name: String,
    /// Root class of the path.
    pub class: String,
    /// Relationship member names along the path.
    pub path: Vec<String>,
}

/// The state of one shard. Cloned copy-on-write when a pinned view
/// still references it.
#[derive(Debug, Clone, Default)]
pub struct ShardData {
    /// Objects owned by this shard, keyed by OID.
    pub objects: HashMap<u64, StoredObject>,
    /// Relationship pairs whose *source* OID hashes to this shard,
    /// keyed by predicate name.
    pub links: HashMap<String, Vec<LinkEntry>>,
    /// Generation of the last mutation applied to this shard.
    pub generation: u64,
}

struct Shard {
    data: RwLock<Arc<ShardData>>,
    wal: Mutex<Option<Wal>>,
}

/// What a recovery pass found on disk.
#[derive(Debug, Clone, Default)]
pub struct RecoverReport {
    /// Whether a snapshot file was loaded.
    pub had_snapshot: bool,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: usize,
    /// Torn-tail bytes dropped across all WAL files.
    pub dropped_bytes: u64,
    /// Wall-clock nanoseconds the recovery took.
    pub recover_ns: u64,
}

/// What a persist (snapshot) pass wrote.
#[derive(Debug, Clone, Copy)]
pub struct PersistReport {
    /// Snapshot bytes written.
    pub snapshot_bytes: u64,
    /// Store generation at the snapshot cut.
    pub generation: u64,
}

/// The durable, sharded object store.
pub struct ShardedStore {
    shards: Vec<Shard>,
    next_oid: AtomicU64,
    generation: AtomicU64,
    asrs: Mutex<Vec<AsrRecord>>,
    dir: Option<PathBuf>,
    recover: RecoverReport,
}

impl std::fmt::Debug for ShardedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedStore")
            .field("shards", &self.shards.len())
            .field("generation", &self.generation())
            .field("dir", &self.dir)
            .finish()
    }
}

/// Shard index owning an OID: a multiplicative hash of the OID modulo
/// the shard count (sequential OIDs spread across shards).
fn shard_index(oid: u64, n: usize) -> usize {
    ((oid.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % n as u64) as usize
}

fn wal_path(dir: &Path, i: usize) -> PathBuf {
    dir.join(format!("wal-{i}.log"))
}

fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join("snapshot.bin")
}

impl ShardedStore {
    /// A purely in-memory store (no WAL, no snapshots): sharding and
    /// views without durability.
    pub fn in_memory(n_shards: usize) -> ShardedStore {
        Self::build(n_shards.max(1), None).expect("in-memory store cannot fail")
    }

    /// Open a store directory, creating it if absent and recovering
    /// (snapshot + WAL tail) if not. A corrupt snapshot is a hard
    /// [`StoreError::Corrupt`]; torn WAL tails are dropped cleanly.
    pub fn open(dir: &Path, n_shards: usize) -> Result<ShardedStore> {
        std::fs::create_dir_all(dir)?;
        Self::build(n_shards.max(1), Some(dir.to_path_buf()))
    }

    fn build(n_shards: usize, dir: Option<PathBuf>) -> Result<ShardedStore> {
        let start = Instant::now();
        let mut shard_data: Vec<ShardData> = (0..n_shards).map(|_| ShardData::default()).collect();
        let mut report = RecoverReport::default();
        let mut generation = 0u64;
        let mut next_oid = 1u64;
        let mut asrs = Vec::new();

        if let Some(dir) = &dir {
            // 1. Latest snapshot. The on-disk shard count may differ
            //    from ours: shard assignment is a pure function of the
            //    OID, so state is redistributed on load.
            if let Some(snap) = read_snapshot(&snapshot_path(dir))? {
                report.had_snapshot = true;
                generation = snap.generation;
                next_oid = snap.next_oid;
                asrs = snap.asrs;
                for old in snap.shards {
                    for (oid, obj) in old.objects {
                        shard_data[shard_index(oid, n_shards)]
                            .objects
                            .insert(oid, obj);
                    }
                    for (pred, entries) in old.links {
                        for e in entries {
                            shard_data[shard_index(e.from, n_shards)]
                                .links
                                .entry(pred.clone())
                                .or_default()
                                .push(e);
                        }
                    }
                }
                // Re-establish per-pred seq order after redistribution.
                for sd in shard_data.iter_mut() {
                    for entries in sd.links.values_mut() {
                        entries.sort_by_key(|e| e.seq);
                    }
                    sd.generation = snap.generation;
                }
            }

            // 2. Replay every WAL record beyond the snapshot cut, in
            //    generation order (records for one OID always share a
            //    file, but a changed shard count can split them).
            let mut records: Vec<(u64, StoreOp)> = Vec::new();
            let mut wal_files: Vec<PathBuf> = std::fs::read_dir(dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
                })
                .collect();
            wal_files.sort();
            for path in &wal_files {
                let replay = read_wal(path)?;
                report.dropped_bytes += replay.dropped_bytes;
                if replay.dropped_bytes > 0 {
                    truncate_to(path, replay.valid_len)?;
                }
                for (gen, op_bytes) in replay.records {
                    if gen <= generation && report.had_snapshot {
                        continue; // already folded into the snapshot
                    }
                    records.push((gen, StoreOp::decode(&op_bytes)?));
                }
            }
            records.sort_by_key(|(gen, _)| *gen);
            report.wal_records_replayed = records.len();
            let replay_one =
                |shard_data: &mut Vec<ShardData>, op: &StoreOp, gen: u64| -> Result<()> {
                    let idx = shard_index(op.shard_key().expect("shard-local op"), n_shards);
                    apply_to_shard(&mut shard_data[idx], op, gen)?;
                    shard_data[idx].generation = shard_data[idx].generation.max(gen);
                    Ok(())
                };
            for (gen, op) in records {
                match &op {
                    StoreOp::DefineAsr { name, class, path } => asrs.push(AsrRecord {
                        name: name.clone(),
                        class: class.clone(),
                        path: path.clone(),
                    }),
                    // A batch frame carries its base generation; its
                    // components were assigned base..base+n.
                    StoreOp::Batch { ops } => {
                        for (i, comp) in ops.iter().enumerate() {
                            let g = gen + i as u64;
                            replay_one(&mut shard_data, comp, g)?;
                            if let StoreOp::PutObject { oid, .. } = comp {
                                next_oid = next_oid.max(oid + 1);
                            }
                            generation = generation.max(g);
                        }
                    }
                    _ => replay_one(&mut shard_data, &op, gen)?,
                }
                if let StoreOp::PutObject { oid, .. } = &op {
                    next_oid = next_oid.max(oid + 1);
                }
                generation = generation.max(gen);
            }
        }

        let shards = shard_data
            .into_iter()
            .enumerate()
            .map(|(i, data)| {
                let wal = match &dir {
                    Some(dir) => Some(Wal::open(&wal_path(dir, i))?),
                    None => None,
                };
                Ok(Shard {
                    data: RwLock::new(Arc::new(data)),
                    wal: Mutex::new(wal),
                })
            })
            .collect::<Result<Vec<_>>>()?;

        report.recover_ns = start.elapsed().as_nanos() as u64;
        if dir.is_some() {
            add(Counter::StoreRecoverNs, report.recover_ns);
            sqo_obs::record_hist("store.recover", report.recover_ns);
        }
        Ok(ShardedStore {
            shards,
            next_oid: AtomicU64::new(next_oid),
            generation: AtomicU64::new(generation),
            asrs: Mutex::new(asrs),
            dir,
            recover: report,
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Whether this store is backed by a directory (durable) or purely
    /// in-memory.
    pub fn is_durable(&self) -> bool {
        self.dir.is_some()
    }

    /// What the opening recovery pass found.
    pub fn recover_report(&self) -> &RecoverReport {
        &self.recover
    }

    /// Current global generation (bumped once per applied mutation).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Generation of the last write to the shard owning `oid` — writes
    /// to other shards leave it untouched.
    pub fn shard_generation(&self, oid: u64) -> u64 {
        let shard = &self.shards[shard_index(oid, self.shards.len())];
        shard.data.read().expect("shard lock").generation
    }

    /// Allocate a fresh OID.
    pub fn alloc_oid(&self) -> u64 {
        self.next_oid.fetch_add(1, Ordering::SeqCst)
    }

    /// Raise the OID allocator watermark (used when bulk-importing
    /// state with pre-assigned OIDs).
    pub fn bump_next_oid(&self, next: u64) {
        self.next_oid.fetch_max(next, Ordering::SeqCst);
    }

    /// Apply one mutation: validate it against the owning shard, append
    /// it to that shard's WAL, then mutate the shard copy-on-write.
    /// Returns the generation assigned to the mutation (the last
    /// component's for a [`StoreOp::Batch`]). Only the owning shard is
    /// locked (a batch locks every shard its components touch).
    pub fn apply(&self, op: &StoreOp) -> Result<u64> {
        if let StoreOp::Batch { ops } = op {
            return self.apply_batch(op, ops);
        }
        let idx = op.shard_key().map(|k| shard_index(k, self.shards.len()));
        let shard = &self.shards[idx.unwrap_or(0)];
        let wait = Instant::now();
        let mut data = shard.data.write().expect("shard lock");
        add(
            Counter::StoreShardLockWaitNs,
            wait.elapsed().as_nanos() as u64,
        );
        // Validate against the locked shard *before* the WAL append: an
        // op that cannot apply must never be durably logged, or every
        // future recovery would replay the same failure and the store
        // could no longer open.
        if !matches!(op, StoreOp::DefineAsr { .. }) {
            precheck_ops(std::slice::from_ref(op), |oid| {
                data.objects.contains_key(&oid)
            })?;
        }
        let gen = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        if let Some(wal) = shard.wal.lock().expect("wal lock").as_mut() {
            wal.append(gen, &op.encode())?;
        }
        match op {
            StoreOp::DefineAsr { name, class, path } => {
                self.asrs.lock().expect("asr lock").push(AsrRecord {
                    name: name.clone(),
                    class: class.clone(),
                    path: path.clone(),
                });
            }
            _ => {
                let state = Arc::make_mut(&mut data);
                apply_to_shard(state, op, gen)?;
                state.generation = gen;
            }
        }
        if let StoreOp::PutObject { oid, .. } = op {
            self.bump_next_oid(oid + 1);
        }
        Ok(gen)
    }

    /// Apply a compound mutation atomically: the whole batch is framed
    /// as **one** WAL record (on the first component's shard) and
    /// applied under the write locks of every shard it touches, so a
    /// crash persists either the whole batch or none of it — never a
    /// forward link without its inverse.
    fn apply_batch(&self, batch: &StoreOp, ops: &[StoreOp]) -> Result<u64> {
        let n_shards = self.shards.len();
        if ops.is_empty() {
            return Err(StoreError::Invalid {
                detail: "empty batch".into(),
            });
        }
        let mut indices = Vec::with_capacity(ops.len());
        for op in ops {
            match op.shard_key() {
                Some(k) if !matches!(op, StoreOp::Batch { .. }) => {
                    indices.push(shard_index(k, n_shards));
                }
                _ => {
                    return Err(StoreError::Invalid {
                        detail: "batch component must be a shard-local op".into(),
                    })
                }
            }
        }
        // Lock involved shards in ascending index order — the same
        // order `persist` uses — so batches and snapshots never
        // deadlock against each other.
        let mut locked: Vec<usize> = indices.clone();
        locked.sort_unstable();
        locked.dedup();
        let wait = Instant::now();
        let mut guards: BTreeMap<usize, std::sync::RwLockWriteGuard<'_, Arc<ShardData>>> = locked
            .iter()
            .map(|&i| (i, self.shards[i].data.write().expect("shard lock")))
            .collect();
        add(
            Counter::StoreShardLockWaitNs,
            wait.elapsed().as_nanos() as u64,
        );
        // Validate the whole batch before anything reaches a WAL
        // (sequencing within the batch honored via an overlay).
        precheck_ops(ops, |oid| {
            guards[&shard_index(oid, n_shards)]
                .objects
                .contains_key(&oid)
        })?;
        // One generation per component; the frame is stamped with the
        // base so recovery can re-derive each component's generation.
        let base = self
            .generation
            .fetch_add(ops.len() as u64, Ordering::SeqCst)
            + 1;
        if let Some(wal) = self.shards[indices[0]]
            .wal
            .lock()
            .expect("wal lock")
            .as_mut()
        {
            wal.append(base, &batch.encode())?;
        }
        for (i, op) in ops.iter().enumerate() {
            let gen = base + i as u64;
            let guard = guards.get_mut(&indices[i]).expect("shard locked above");
            let state = Arc::make_mut(&mut *guard);
            apply_to_shard(state, op, gen)?;
            state.generation = gen;
            if let StoreOp::PutObject { oid, .. } = op {
                self.bump_next_oid(oid + 1);
            }
        }
        Ok(base + ops.len() as u64 - 1)
    }

    /// Pin a read view. Cheap: clones one `Arc` per shard under brief
    /// read locks. The view stays valid at its generation for as long
    /// as it lives; writers proceed copy-on-write.
    pub fn view(&self) -> StoreView {
        let wait = Instant::now();
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.data.read().expect("shard lock"))
            .collect();
        add(
            Counter::StoreShardLockWaitNs,
            wait.elapsed().as_nanos() as u64,
        );
        let shards: Vec<Arc<ShardData>> = guards.iter().map(|g| Arc::clone(g)).collect();
        // Capture the OID watermark and ASR set while the shard guards
        // are still held: no writer can be mid-apply, so the view is a
        // consistent cut of shard state, allocator, and definitions.
        let next_oid = self.next_oid.load(Ordering::SeqCst);
        let view_asrs = self.asrs.lock().expect("asr lock").clone();
        drop(guards);
        StoreView {
            generation: shards.iter().map(|s| s.generation).max().unwrap_or(0),
            next_oid,
            asrs: view_asrs,
            shards,
        }
    }

    /// Force a compact snapshot: block writers on every shard, write
    /// the versioned snapshot atomically, fsync, then truncate every
    /// WAL file. No-op (zero bytes) for in-memory stores.
    pub fn persist(&self) -> Result<PersistReport> {
        let Some(dir) = &self.dir else {
            return Ok(PersistReport {
                snapshot_bytes: 0,
                generation: self.generation(),
            });
        };
        // Hold every shard's write lock for the cut so the snapshot is
        // a point-in-time image and no record can land in a WAL after
        // the cut but before its truncation.
        let guards: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.data.write().expect("shard lock"))
            .collect();
        let data = SnapshotData {
            generation: self.generation(),
            next_oid: self.next_oid.load(Ordering::SeqCst),
            shards: guards.iter().map(|g| (***g).clone()).collect(),
            asrs: self.asrs.lock().expect("asr lock").clone(),
        };
        let bytes = write_snapshot(&snapshot_path(dir), &data)?;
        for shard in &self.shards {
            if let Some(wal) = shard.wal.lock().expect("wal lock").as_mut() {
                wal.truncate()?;
            }
        }
        // Remove WAL files from a previous run with more shards: their
        // records are all at or below the snapshot generation now.
        for entry in std::fs::read_dir(dir)?.filter_map(|e| e.ok()) {
            let path = entry.path();
            let stale = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("wal-"))
                .and_then(|n| n.strip_suffix(".log"))
                .and_then(|n| n.parse::<usize>().ok())
                .is_some_and(|i| i >= self.shards.len());
            if stale {
                std::fs::remove_file(&path)?;
            }
        }
        drop(guards);
        add(Counter::StoreSnapshotBytes, bytes);
        Ok(PersistReport {
            snapshot_bytes: bytes,
            generation: data.generation,
        })
    }

    /// Flush every WAL file to stable storage.
    pub fn sync(&self) -> Result<()> {
        for shard in &self.shards {
            if let Some(wal) = shard.wal.lock().expect("wal lock").as_ref() {
                wal.sync()?;
            }
        }
        Ok(())
    }

    /// Total live objects across all shards.
    pub fn object_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.data.read().expect("shard lock").objects.len())
            .sum()
    }
}

/// Validate shard-local ops against current object existence *before*
/// anything reaches a WAL, mirroring exactly the failure modes of
/// [`apply_to_shard`]. Within a sequence the overlay honors ordering: a
/// `PutObject` earlier in a batch satisfies a later `SetAttr`, a
/// `RemoveObject` invalidates later references.
fn precheck_ops(ops: &[StoreOp], exists: impl Fn(u64) -> bool) -> Result<()> {
    let mut overlay: HashMap<u64, bool> = HashMap::new();
    let alive = |oid: u64, overlay: &HashMap<u64, bool>| {
        overlay.get(&oid).copied().unwrap_or_else(|| exists(oid))
    };
    for op in ops {
        match op {
            StoreOp::PutObject { oid, .. } => {
                overlay.insert(*oid, true);
            }
            StoreOp::SetAttr { oid, .. } => {
                if !alive(*oid, &overlay) {
                    return Err(StoreError::Invalid {
                        detail: format!("SetAttr on unknown OID {oid}"),
                    });
                }
            }
            StoreOp::RemoveObject { oid } => {
                if !alive(*oid, &overlay) {
                    return Err(StoreError::Invalid {
                        detail: format!("RemoveObject on unknown OID {oid}"),
                    });
                }
                overlay.insert(*oid, false);
            }
            StoreOp::Link { .. } | StoreOp::Unlink { .. } => {}
            StoreOp::DefineAsr { .. } | StoreOp::Batch { .. } => {
                return Err(StoreError::Invalid {
                    detail: "precheck expects shard-local ops".into(),
                })
            }
        }
    }
    Ok(())
}

/// Apply a shard-local op to a shard's state. `gen` stamps new link
/// entries so cross-shard insertion order is reconstructible.
fn apply_to_shard(state: &mut ShardData, op: &StoreOp, gen: u64) -> Result<()> {
    match op {
        StoreOp::PutObject { oid, class, attrs } => {
            state.objects.insert(
                *oid,
                StoredObject {
                    class: class.clone(),
                    attrs: attrs.iter().cloned().collect(),
                },
            );
        }
        StoreOp::SetAttr { oid, attr, value } => {
            let obj = state
                .objects
                .get_mut(oid)
                .ok_or_else(|| StoreError::Invalid {
                    detail: format!("SetAttr on unknown OID {oid}"),
                })?;
            obj.attrs.insert(attr.clone(), value.clone());
        }
        StoreOp::Link { pred, from, to } => {
            state
                .links
                .entry(pred.clone())
                .or_default()
                .push(LinkEntry {
                    seq: gen,
                    from: *from,
                    to: *to,
                });
        }
        StoreOp::Unlink { pred, from, to } => {
            if let Some(entries) = state.links.get_mut(pred) {
                entries.retain(|e| !(e.from == *from && e.to == *to));
            }
        }
        StoreOp::RemoveObject { oid } => {
            state
                .objects
                .remove(oid)
                .ok_or_else(|| StoreError::Invalid {
                    detail: format!("RemoveObject on unknown OID {oid}"),
                })?;
        }
        StoreOp::DefineAsr { .. } | StoreOp::Batch { .. } => {
            return Err(StoreError::Invalid {
                detail: "op is not shard-local".into(),
            })
        }
    }
    Ok(())
}

/// A pinned, immutable view of the whole store at one generation.
/// Holding it is cheap (`Arc`s); it never blocks writers.
#[derive(Debug, Clone)]
pub struct StoreView {
    shards: Vec<Arc<ShardData>>,
    generation: u64,
    next_oid: u64,
    asrs: Vec<AsrRecord>,
}

impl StoreView {
    /// The generation this view is pinned at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The OID allocator watermark at pin time.
    pub fn next_oid(&self) -> u64 {
        self.next_oid
    }

    /// ASR definitions at pin time.
    pub fn asrs(&self) -> &[AsrRecord] {
        &self.asrs
    }

    /// Look up an object.
    pub fn object(&self, oid: u64) -> Option<&StoredObject> {
        self.shards[shard_index(oid, self.shards.len())]
            .objects
            .get(&oid)
    }

    /// Total live objects.
    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.objects.len()).sum()
    }

    /// All objects sorted by OID (OIDs allocate monotonically, so this
    /// is creation order).
    pub fn objects_sorted(&self) -> Vec<(u64, &StoredObject)> {
        let mut out: Vec<(u64, &StoredObject)> = self
            .shards
            .iter()
            .flat_map(|s| s.objects.iter().map(|(oid, obj)| (*oid, obj)))
            .collect();
        out.sort_unstable_by_key(|(oid, _)| *oid);
        out
    }

    /// All relationship pairs grouped by predicate, each predicate's
    /// pairs in global insertion order (reassembled across shards via
    /// the per-entry generation stamp).
    pub fn links_by_pred(&self) -> BTreeMap<String, Vec<(u64, u64)>> {
        let mut merged: BTreeMap<String, Vec<LinkEntry>> = BTreeMap::new();
        for shard in &self.shards {
            for (pred, entries) in &shard.links {
                merged
                    .entry(pred.clone())
                    .or_default()
                    .extend(entries.iter().copied());
            }
        }
        merged
            .into_iter()
            .map(|(pred, mut entries)| {
                entries.sort_by_key(|e| e.seq);
                (pred, entries.into_iter().map(|e| (e.from, e.to)).collect())
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_dir;

    fn put(oid: u64, class: &str, age: i64) -> StoreOp {
        StoreOp::PutObject {
            oid,
            class: class.into(),
            attrs: vec![("age".into(), StoreValue::Int(age))],
        }
    }

    #[test]
    fn apply_and_view_round_trip_in_memory() {
        let store = ShardedStore::in_memory(4);
        for oid in 1..=20 {
            store.apply(&put(oid, "Person", oid as i64)).unwrap();
        }
        store
            .apply(&StoreOp::Link {
                pred: "knows".into(),
                from: 1,
                to: 2,
            })
            .unwrap();
        let view = store.view();
        assert_eq!(view.object_count(), 20);
        assert_eq!(view.object(7).unwrap().attrs["age"], StoreValue::Int(7));
        let oids: Vec<u64> = view.objects_sorted().iter().map(|(o, _)| *o).collect();
        assert_eq!(oids, (1..=20).collect::<Vec<_>>());
        assert_eq!(view.links_by_pred()["knows"], vec![(1, 2)]);
        assert_eq!(view.generation(), store.generation());
    }

    #[test]
    fn pinned_view_is_isolated_from_later_writes() {
        let store = ShardedStore::in_memory(4);
        store.apply(&put(1, "Person", 30)).unwrap();
        let pinned = store.view();
        let g = pinned.generation();
        // Writers advance the store to G+k...
        for oid in 2..=50 {
            store.apply(&put(oid, "Person", 99)).unwrap();
        }
        store
            .apply(&StoreOp::SetAttr {
                oid: 1,
                attr: "age".into(),
                value: StoreValue::Int(31),
            })
            .unwrap();
        // ...but the pinned view still answers at generation G.
        assert_eq!(pinned.generation(), g);
        assert_eq!(pinned.object_count(), 1);
        assert_eq!(pinned.object(1).unwrap().attrs["age"], StoreValue::Int(30));
        // A fresh view sees everything.
        let now = store.view();
        assert_eq!(now.object_count(), 50);
        assert_eq!(now.object(1).unwrap().attrs["age"], StoreValue::Int(31));
        assert!(now.generation() > g);
    }

    #[test]
    fn writes_bump_only_the_owning_shard_generation() {
        let store = ShardedStore::in_memory(8);
        // Find two OIDs living on different shards.
        let (a, b) = {
            let mut found = (1u64, 2u64);
            for b in 2..100 {
                if shard_index(b, 8) != shard_index(1, 8) {
                    found = (1, b);
                    break;
                }
            }
            found
        };
        store.apply(&put(a, "Person", 1)).unwrap();
        store.apply(&put(b, "Person", 2)).unwrap();
        let gen_a = store.shard_generation(a);
        let gen_b = store.shard_generation(b);
        store
            .apply(&StoreOp::SetAttr {
                oid: a,
                attr: "age".into(),
                value: StoreValue::Int(10),
            })
            .unwrap();
        assert!(store.shard_generation(a) > gen_a, "written shard bumps");
        assert_eq!(
            store.shard_generation(b),
            gen_b,
            "untouched shard keeps its generation"
        );
    }

    #[test]
    fn durable_round_trip_wal_only() {
        let dir = test_dir("store_wal_only");
        {
            let store = ShardedStore::open(&dir, 4).unwrap();
            for oid in 1..=10 {
                store.apply(&put(oid, "Person", oid as i64)).unwrap();
            }
            store
                .apply(&StoreOp::Link {
                    pred: "knows".into(),
                    from: 3,
                    to: 4,
                })
                .unwrap();
            store.apply(&StoreOp::RemoveObject { oid: 10 }).unwrap();
            // No persist: recovery must come entirely from the WAL.
        }
        let store = ShardedStore::open(&dir, 4).unwrap();
        assert!(!store.recover_report().had_snapshot);
        assert_eq!(store.recover_report().wal_records_replayed, 12);
        let view = store.view();
        assert_eq!(view.object_count(), 9);
        assert_eq!(view.links_by_pred()["knows"], vec![(3, 4)]);
        assert_eq!(store.alloc_oid(), 11);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_round_trip_snapshot_plus_wal_tail() {
        let dir = test_dir("store_snap_tail");
        let gen_before;
        {
            let store = ShardedStore::open(&dir, 4).unwrap();
            for oid in 1..=5 {
                store.apply(&put(oid, "Person", oid as i64)).unwrap();
            }
            let report = store.persist().unwrap();
            assert!(report.snapshot_bytes > 0);
            // Tail writes after the snapshot live only in the WAL.
            store.apply(&put(6, "Person", 6)).unwrap();
            store
                .apply(&StoreOp::SetAttr {
                    oid: 2,
                    attr: "age".into(),
                    value: StoreValue::Int(99),
                })
                .unwrap();
            gen_before = store.generation();
        }
        let store = ShardedStore::open(&dir, 4).unwrap();
        assert!(store.recover_report().had_snapshot);
        assert_eq!(store.recover_report().wal_records_replayed, 2);
        assert_eq!(store.generation(), gen_before);
        let view = store.view();
        assert_eq!(view.object_count(), 6);
        assert_eq!(view.object(2).unwrap().attrs["age"], StoreValue::Int(99));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reshard_on_reopen_preserves_state() {
        let dir = test_dir("store_reshard");
        {
            let store = ShardedStore::open(&dir, 8).unwrap();
            for oid in 1..=30 {
                store.apply(&put(oid, "Person", oid as i64)).unwrap();
                if oid > 1 {
                    store
                        .apply(&StoreOp::Link {
                            pred: "next".into(),
                            from: oid - 1,
                            to: oid,
                        })
                        .unwrap();
                }
            }
            store.persist().unwrap();
        }
        // Reopen with a different shard count: pure-function-of-OID
        // assignment means state just redistributes.
        let store = ShardedStore::open(&dir, 3).unwrap();
        let view = store.view();
        assert_eq!(view.object_count(), 30);
        let pairs = &view.links_by_pred()["next"];
        assert_eq!(pairs.len(), 29);
        assert_eq!(pairs[0], (1, 2));
        assert_eq!(pairs[28], (29, 30));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_wal_tail_dropped_on_open() {
        let dir = test_dir("store_torn");
        {
            let store = ShardedStore::open(&dir, 1).unwrap();
            store.apply(&put(1, "Person", 1)).unwrap();
            store.apply(&put(2, "Person", 2)).unwrap();
        }
        // Tear the single WAL file mid-record.
        let wal = wal_path(&dir, 0);
        let len = std::fs::metadata(&wal).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let store = ShardedStore::open(&dir, 1).unwrap();
        assert_eq!(store.recover_report().wal_records_replayed, 1);
        assert!(store.recover_report().dropped_bytes > 0);
        assert_eq!(store.view().object_count(), 1);
        // The torn bytes were truncated away: appends resume cleanly
        // and a further reopen sees both the old and the new record.
        store.apply(&put(7, "Person", 7)).unwrap();
        drop(store);
        let store = ShardedStore::open(&dir, 1).unwrap();
        assert_eq!(store.view().object_count(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_is_a_clean_error() {
        let dir = test_dir("store_corrupt_snap");
        {
            let store = ShardedStore::open(&dir, 2).unwrap();
            store.apply(&put(1, "Person", 1)).unwrap();
            store.persist().unwrap();
        }
        let snap = snapshot_path(&dir);
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap, &bytes).unwrap();
        match ShardedStore::open(&dir, 2) {
            Err(StoreError::Corrupt { detail }) => {
                assert!(!detail.is_empty());
            }
            other => panic!("expected Corrupt, got {:?}", other.map(|_| ())),
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_writers_on_distinct_shards() {
        let store = Arc::new(ShardedStore::in_memory(8));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        let oid = t * 1000 + i + 1;
                        store.apply(&put(oid, "Person", oid as i64)).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(store.object_count(), 1000);
        assert_eq!(store.generation(), 1000);
        // Generations are unique per mutation: the max link seq /
        // shard generation cannot exceed the global generation.
        let view = store.view();
        assert!(view.generation() <= 1000);
    }

    #[test]
    fn set_attr_on_unknown_oid_is_invalid() {
        let store = ShardedStore::in_memory(2);
        let err = store
            .apply(&StoreOp::SetAttr {
                oid: 42,
                attr: "age".into(),
                value: StoreValue::Int(1),
            })
            .unwrap_err();
        assert!(matches!(err, StoreError::Invalid { .. }));
    }

    #[test]
    fn invalid_op_is_never_durably_logged() {
        let dir = test_dir("store_invalid_not_logged");
        {
            let store = ShardedStore::open(&dir, 2).unwrap();
            store.apply(&put(1, "Person", 1)).unwrap();
            let err = store
                .apply(&StoreOp::SetAttr {
                    oid: 42,
                    attr: "age".into(),
                    value: StoreValue::Int(1),
                })
                .unwrap_err();
            assert!(matches!(err, StoreError::Invalid { .. }));
            let err = store.apply(&StoreOp::RemoveObject { oid: 42 }).unwrap_err();
            assert!(matches!(err, StoreError::Invalid { .. }));
        }
        // The rejected ops never reached a WAL: recovery replays only
        // the valid record and the store opens cleanly — an invalid op
        // must not make a durable store unrecoverable.
        let store = ShardedStore::open(&dir, 2).unwrap();
        assert_eq!(store.recover_report().wal_records_replayed, 1);
        assert_eq!(store.view().object_count(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn knows_both_ways() -> StoreOp {
        StoreOp::Batch {
            ops: vec![
                StoreOp::Link {
                    pred: "knows".into(),
                    from: 1,
                    to: 2,
                },
                StoreOp::Link {
                    pred: "known_by".into(),
                    from: 2,
                    to: 1,
                },
            ],
        }
    }

    #[test]
    fn batch_is_one_frame_and_recovers_atomically() {
        let dir = test_dir("store_batch");
        {
            let store = ShardedStore::open(&dir, 4).unwrap();
            store.apply(&put(1, "Person", 1)).unwrap();
            store.apply(&put(2, "Person", 2)).unwrap();
            // Two components get generations 3 and 4; apply returns the last.
            assert_eq!(store.apply(&knows_both_ways()).unwrap(), 4);
            assert_eq!(store.generation(), 4);
        }
        let store = ShardedStore::open(&dir, 4).unwrap();
        // Two puts plus ONE batch frame.
        assert_eq!(store.recover_report().wal_records_replayed, 3);
        assert_eq!(store.generation(), 4);
        let view = store.view();
        assert_eq!(view.links_by_pred()["knows"], vec![(1, 2)]);
        assert_eq!(view.links_by_pred()["known_by"], vec![(2, 1)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_batch_drops_whole_compound_mutation() {
        let dir = test_dir("store_batch_torn");
        {
            let store = ShardedStore::open(&dir, 1).unwrap();
            store.apply(&put(1, "Person", 1)).unwrap();
            store.apply(&put(2, "Person", 2)).unwrap();
            store.apply(&knows_both_ways()).unwrap();
        }
        // Tear the tail mid-batch-frame: the whole compound mutation
        // vanishes — never a forward link without its inverse.
        let wal = wal_path(&dir, 0);
        let len = std::fs::metadata(&wal).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&wal)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let store = ShardedStore::open(&dir, 1).unwrap();
        let view = store.view();
        assert_eq!(view.object_count(), 2);
        assert!(view.links_by_pred().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_validates_before_logging() {
        let dir = test_dir("store_batch_invalid");
        {
            let store = ShardedStore::open(&dir, 2).unwrap();
            store.apply(&put(1, "Person", 1)).unwrap();
            // A batch with one invalid component is rejected whole,
            // before anything reaches a WAL.
            let err = store
                .apply(&StoreOp::Batch {
                    ops: vec![
                        StoreOp::Link {
                            pred: "knows".into(),
                            from: 1,
                            to: 2,
                        },
                        StoreOp::SetAttr {
                            oid: 99,
                            attr: "age".into(),
                            value: StoreValue::Int(1),
                        },
                    ],
                })
                .unwrap_err();
            assert!(matches!(err, StoreError::Invalid { .. }));
            assert!(store.view().links_by_pred().is_empty());
            // Sequencing within a batch: an earlier put satisfies a
            // later set on the same (new) OID.
            store
                .apply(&StoreOp::Batch {
                    ops: vec![
                        put(7, "Person", 7),
                        StoreOp::SetAttr {
                            oid: 7,
                            attr: "age".into(),
                            value: StoreValue::Int(8),
                        },
                    ],
                })
                .unwrap();
            // Empty and nested batches are invalid.
            assert!(store.apply(&StoreOp::Batch { ops: vec![] }).is_err());
            assert!(store
                .apply(&StoreOp::Batch {
                    ops: vec![StoreOp::Batch {
                        ops: vec![put(9, "Person", 9)]
                    }],
                })
                .is_err());
        }
        let store = ShardedStore::open(&dir, 2).unwrap();
        let view = store.view();
        assert_eq!(view.object_count(), 2);
        assert_eq!(view.object(7).unwrap().attrs["age"], StoreValue::Int(8));
        assert!(view.links_by_pred().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
