//! Logical store operations and their wire encoding.
//!
//! Every mutation of the store is expressed as a [`StoreOp`] — the unit
//! that is appended to the write-ahead log and applied to the in-memory
//! shard state. Simple ops are deliberately *shard-local*: each one
//! touches the state of exactly one shard (the shard owning `oid` /
//! `from`), so a per-shard WAL replayed in order reconstructs that
//! shard exactly. Compound mutations (linking an inverse pair, deleting
//! an object and severing its links) are expressed as a single
//! [`StoreOp::Batch`] of shard-local components — one WAL frame, so a
//! crash can never persist half of a compound mutation.

use crate::codec::{Reader, Writer};
use crate::error::{Result, StoreError};

/// A stored attribute value. Mirrors the object layer's value model
/// (`sqo-objdb`'s `Value`) without depending on it, keeping this crate
/// at the bottom of the dependency stack.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreValue {
    /// 64-bit integer.
    Int(i64),
    /// IEEE-754 double.
    Real(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
    /// Reference to another object by OID.
    Obj(u64),
}

/// A shard-local logical mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreOp {
    /// Insert (or overwrite) an object with its full attribute map.
    PutObject {
        /// Object identifier (assigned by the caller).
        oid: u64,
        /// Most specific class or structure name.
        class: String,
        /// Attribute name/value pairs.
        attrs: Vec<(String, StoreValue)>,
    },
    /// Overwrite a single attribute of an existing object.
    SetAttr {
        /// Target object.
        oid: u64,
        /// Attribute name.
        attr: String,
        /// New value.
        value: StoreValue,
    },
    /// Append one directed relationship pair to a predicate. Inverse
    /// maintenance is the caller's job (it emits a second `Link`).
    Link {
        /// Relationship predicate name.
        pred: String,
        /// Source OID (the sharding key).
        from: u64,
        /// Target OID.
        to: u64,
    },
    /// Remove one directed relationship pair.
    Unlink {
        /// Relationship predicate name.
        pred: String,
        /// Source OID (the sharding key).
        from: u64,
        /// Target OID.
        to: u64,
    },
    /// Remove an object. Links must already have been severed by
    /// explicit [`StoreOp::Unlink`] ops.
    RemoveObject {
        /// Target object.
        oid: u64,
    },
    /// Record an access-support-relation definition (original
    /// definition-site arguments, so the object layer can re-register
    /// the view on recovery).
    DefineAsr {
        /// View name as passed at the definition site.
        name: String,
        /// Root class of the path.
        class: String,
        /// Relationship member names along the path.
        path: Vec<String>,
    },
    /// A compound mutation: shard-local component ops that commit
    /// atomically as **one** WAL frame. A crash either persists the
    /// whole batch or none of it — never a forward link without its
    /// inverse, never an unlink sweep without its object removal.
    /// Components may span shards; nesting and store-global ops
    /// (`DefineAsr`) are rejected.
    Batch {
        /// The component ops, applied in order.
        ops: Vec<StoreOp>,
    },
}

const TAG_PUT_OBJECT: u8 = 1;
const TAG_SET_ATTR: u8 = 2;
const TAG_LINK: u8 = 3;
const TAG_UNLINK: u8 = 4;
const TAG_REMOVE_OBJECT: u8 = 5;
const TAG_DEFINE_ASR: u8 = 6;
const TAG_BATCH: u8 = 7;

impl StoreOp {
    /// The OID whose hash selects the owning shard. Store-global ops
    /// (ASR definitions) return `None` and live on shard 0; a batch
    /// reports its first component's key (it is *logged* on that shard
    /// but applied to every shard its components touch).
    pub fn shard_key(&self) -> Option<u64> {
        match self {
            StoreOp::PutObject { oid, .. }
            | StoreOp::SetAttr { oid, .. }
            | StoreOp::RemoveObject { oid } => Some(*oid),
            StoreOp::Link { from, .. } | StoreOp::Unlink { from, .. } => Some(*from),
            StoreOp::DefineAsr { .. } => None,
            StoreOp::Batch { ops } => ops.first().and_then(StoreOp::shard_key),
        }
    }

    /// Serialize to the on-disk byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            StoreOp::PutObject { oid, class, attrs } => {
                w.u8(TAG_PUT_OBJECT);
                w.u64(*oid);
                w.str(class);
                w.u32(attrs.len() as u32);
                for (name, value) in attrs {
                    w.str(name);
                    w.value(value);
                }
            }
            StoreOp::SetAttr { oid, attr, value } => {
                w.u8(TAG_SET_ATTR);
                w.u64(*oid);
                w.str(attr);
                w.value(value);
            }
            StoreOp::Link { pred, from, to } => {
                w.u8(TAG_LINK);
                w.str(pred);
                w.u64(*from);
                w.u64(*to);
            }
            StoreOp::Unlink { pred, from, to } => {
                w.u8(TAG_UNLINK);
                w.str(pred);
                w.u64(*from);
                w.u64(*to);
            }
            StoreOp::RemoveObject { oid } => {
                w.u8(TAG_REMOVE_OBJECT);
                w.u64(*oid);
            }
            StoreOp::DefineAsr { name, class, path } => {
                w.u8(TAG_DEFINE_ASR);
                w.str(name);
                w.str(class);
                w.u32(path.len() as u32);
                for p in path {
                    w.str(p);
                }
            }
            StoreOp::Batch { ops } => {
                w.u8(TAG_BATCH);
                w.u32(ops.len() as u32);
                for op in ops {
                    let bytes = op.encode();
                    w.u32(bytes.len() as u32);
                    w.bytes(&bytes);
                }
            }
        }
        w.into_bytes()
    }

    /// Deserialize from the on-disk byte form.
    pub fn decode(bytes: &[u8]) -> Result<StoreOp> {
        let mut r = Reader::new(bytes);
        let op = match r.u8("op tag")? {
            TAG_PUT_OBJECT => {
                let oid = r.u64("put oid")?;
                let class = r.str("put class")?;
                let n = r.u32("put attr count")?;
                let mut attrs = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let name = r.str("put attr name")?;
                    let value = r.value("put attr value")?;
                    attrs.push((name, value));
                }
                StoreOp::PutObject { oid, class, attrs }
            }
            TAG_SET_ATTR => StoreOp::SetAttr {
                oid: r.u64("set oid")?,
                attr: r.str("set attr")?,
                value: r.value("set value")?,
            },
            TAG_LINK => StoreOp::Link {
                pred: r.str("link pred")?,
                from: r.u64("link from")?,
                to: r.u64("link to")?,
            },
            TAG_UNLINK => StoreOp::Unlink {
                pred: r.str("unlink pred")?,
                from: r.u64("unlink from")?,
                to: r.u64("unlink to")?,
            },
            TAG_REMOVE_OBJECT => StoreOp::RemoveObject {
                oid: r.u64("remove oid")?,
            },
            TAG_DEFINE_ASR => {
                let name = r.str("asr name")?;
                let class = r.str("asr class")?;
                let n = r.u32("asr path count")?;
                let mut path = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    path.push(r.str("asr path segment")?);
                }
                StoreOp::DefineAsr { name, class, path }
            }
            TAG_BATCH => {
                let n = r.u32("batch op count")?;
                let mut ops = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let len = r.u32("batch op length")? as usize;
                    let op = StoreOp::decode(r.bytes(len, "batch op bytes")?)?;
                    if matches!(op, StoreOp::Batch { .. } | StoreOp::DefineAsr { .. }) {
                        return Err(StoreError::Corrupt {
                            detail: "batch component must be a shard-local op".into(),
                        });
                    }
                    ops.push(op);
                }
                StoreOp::Batch { ops }
            }
            tag => {
                return Err(StoreError::Corrupt {
                    detail: format!("unknown op tag {tag}"),
                })
            }
        };
        if !r.is_empty() {
            return Err(StoreError::Corrupt {
                detail: "trailing bytes after op".into(),
            });
        }
        Ok(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<StoreOp> {
        vec![
            StoreOp::PutObject {
                oid: 7,
                class: "Faculty".into(),
                attrs: vec![
                    ("name".into(), StoreValue::Str("smith".into())),
                    ("age".into(), StoreValue::Int(50)),
                    ("salary".into(), StoreValue::Real(90000.0)),
                    ("tenured".into(), StoreValue::Bool(true)),
                    ("address".into(), StoreValue::Obj(8)),
                ],
            },
            StoreOp::SetAttr {
                oid: 7,
                attr: "age".into(),
                value: StoreValue::Int(51),
            },
            StoreOp::Link {
                pred: "takes".into(),
                from: 1,
                to: 2,
            },
            StoreOp::Unlink {
                pred: "takes".into(),
                from: 1,
                to: 2,
            },
            StoreOp::RemoveObject { oid: 7 },
            StoreOp::DefineAsr {
                name: "asr1".into(),
                class: "Student".into(),
                path: vec!["takes".into(), "is_section_of".into()],
            },
            StoreOp::Batch {
                ops: vec![
                    StoreOp::Link {
                        pred: "takes".into(),
                        from: 1,
                        to: 2,
                    },
                    StoreOp::Link {
                        pred: "taken_by".into(),
                        from: 2,
                        to: 1,
                    },
                ],
            },
        ]
    }

    #[test]
    fn op_encode_decode_round_trip() {
        for op in samples() {
            let bytes = op.encode();
            assert_eq!(StoreOp::decode(&bytes).unwrap(), op);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(StoreOp::decode(&[]).is_err());
        assert!(StoreOp::decode(&[99]).is_err());
        let mut bytes = samples()[0].encode();
        bytes.push(0); // trailing byte
        assert!(StoreOp::decode(&bytes).is_err());
        bytes.truncate(bytes.len().saturating_sub(4));
        assert!(StoreOp::decode(&bytes).is_err());
    }

    #[test]
    fn shard_keys() {
        let ops = samples();
        assert_eq!(ops[0].shard_key(), Some(7));
        assert_eq!(ops[2].shard_key(), Some(1));
        assert_eq!(ops[5].shard_key(), None);
        // A batch reports its first component's key (the WAL it logs to).
        assert_eq!(ops[6].shard_key(), Some(1));
    }

    #[test]
    fn batch_decode_rejects_non_local_components() {
        let nested = StoreOp::Batch {
            ops: vec![StoreOp::Batch { ops: vec![] }],
        };
        assert!(StoreOp::decode(&nested.encode()).is_err());
        let global = StoreOp::Batch {
            ops: vec![StoreOp::DefineAsr {
                name: "v".into(),
                class: "C".into(),
                path: vec![],
            }],
        };
        assert!(StoreOp::decode(&global.encode()).is_err());
    }
}
