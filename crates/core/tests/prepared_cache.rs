//! Behavior tests for [`PreparedOptimizer`] + [`PlanCache`].
//!
//! These assert on obs counter/span deltas, so every test in this binary
//! serializes through one lock (the obs registry is process-global).

use sqo_core::{CacheOutcome, OptimizationReport, PlanCache, PreparedOptimizer, SemanticOptimizer};
use sqo_obs as obs;
use std::sync::Mutex;

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn prepared_university() -> PreparedOptimizer {
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    opt.prepare()
}

/// Rewrites of every equivalent, as (oql, changed) pairs — the
/// cache-independent part of a report.
fn rewrites(r: &OptimizationReport) -> Vec<(String, bool)> {
    r.equivalents()
        .iter()
        .map(|e| (e.oql.to_string(), !e.delta.is_empty()))
        .collect()
}

#[test]
fn warm_hit_skips_search_and_matches_fresh_output() {
    let _g = lock();
    let prep = prepared_university();
    let cache = PlanCache::new();
    // Note 28, not 30: a parameter *equal* to IC4's threshold would pin
    // the entry's signature to the exact-match class.
    let (cold, d0) = prep
        .optimize_cached(&cache, "select x.name from x in Person where x.age < 28")
        .unwrap();
    assert_eq!(d0, CacheOutcome::Miss);
    assert!(cold.stats.counter(obs::Counter::SearchLevels) > 0);

    // Same template, different constant, same side of IC4's 30.
    let (warm, d1) = prep
        .optimize_cached(&cache, "select x.name from x in Person where x.age < 25")
        .unwrap();
    assert_eq!(d1, CacheOutcome::Hit);
    // The warm path ran no Step-1 compilation and no Step-3 search.
    assert_eq!(warm.stats.counter(obs::Counter::ResiduesAttached), 0);
    assert_eq!(warm.stats.counter(obs::Counter::SearchLevels), 0);
    assert_eq!(warm.stats.counter(obs::Counter::SearchNodesExpanded), 0);
    assert!(!warm.stats.spans.contains_key("step3.search"));
    assert!(!warm.stats.spans.contains_key("step1.compile"));

    // And the rewrites are identical to a fresh, uncached run.
    let fresh = prep
        .optimize("select x.name from x in Person where x.age < 25")
        .unwrap();
    assert_eq!(rewrites(&warm), rewrites(&fresh));
    assert!(rewrites(&warm).iter().any(|(oql, changed)| {
        *changed && oql.contains("x not in Faculty") && oql.contains("x.age < 25")
    }));
}

#[test]
fn signature_mismatch_rebinds() {
    let _g = lock();
    let prep = prepared_university();
    let cache = PlanCache::new();
    // age < 20 sits below IC4's 30, so the faculty scope reduction
    // applies; 20 orders Less against the 30 threshold.
    let (_r0, d0) = prep
        .optimize_cached(&cache, "select x.name from x in Person where x.age < 20")
        .unwrap();
    assert_eq!(d0, CacheOutcome::Miss);
    // age < 50 orders Greater against 30: the cached plan may not
    // transfer, so the cache must re-search.
    let (r1, d1) = prep
        .optimize_cached(&cache, "select x.name from x in Person where x.age < 50")
        .unwrap();
    assert_eq!(d1, CacheOutcome::Rebind);
    let fresh = prep
        .optimize("select x.name from x in Person where x.age < 50")
        .unwrap();
    assert_eq!(rewrites(&r1), rewrites(&fresh));
    // The rebound entry now answers its own parameter family.
    let (_r2, d2) = prep
        .optimize_cached(&cache, "select x.name from x in Person where x.age < 60")
        .unwrap();
    assert_eq!(d2, CacheOutcome::Hit);
}

#[test]
fn contradictions_are_cached_and_retargeted() {
    let _g = lock();
    let prep = prepared_university();
    let cache = PlanCache::new();
    let (r0, d0) = prep
        .optimize_cached(&cache, "select x.name from x in Faculty where x.age < 20")
        .unwrap();
    assert_eq!(d0, CacheOutcome::Miss);
    assert!(r0.is_contradiction());
    let (r1, d1) = prep
        .optimize_cached(&cache, "select x.name from x in Faculty where x.age < 25")
        .unwrap();
    assert_eq!(d1, CacheOutcome::Hit);
    assert!(r1.is_contradiction());
    assert_eq!(r1.stats.counter(obs::Counter::SearchLevels), 0);
}

#[test]
fn invalidation_prevents_stale_plans() {
    let _g = lock();
    let prep = prepared_university();
    let cache = PlanCache::new();
    let q = "select x.name from x in Person where x.age < 30";
    let (_r, d0) = prep.optimize_cached(&cache, q).unwrap();
    assert_eq!(d0, CacheOutcome::Miss);
    assert_eq!(cache.len(), 1);
    let before = obs::snapshot();
    cache.invalidate();
    let invalidated = obs::snapshot().since(&before);
    assert_eq!(invalidated.counter(obs::Counter::PlanCacheInvalidations), 1);
    assert!(cache.is_empty());
    // The same query misses again (fresh compilation of the plan).
    let (_r, d1) = prep.optimize_cached(&cache, q).unwrap();
    assert_eq!(d1, CacheOutcome::Miss);
}

#[test]
fn generation_mismatch_is_never_served() {
    let _g = lock();
    let prep0 = prepared_university();
    let cache = PlanCache::new();
    let q = "select x.name from x in Person where x.age < 30";
    let (_r, d0) = prep0.optimize_cached(&cache, q).unwrap();
    assert_eq!(d0, CacheOutcome::Miss);
    // A reloaded schema at a newer generation must not serve the old
    // entry even if the cache was (incorrectly) not invalidated.
    let prep1 = prepared_university().with_generation(1);
    let (_r, d1) = prep1.optimize_cached(&cache, q).unwrap();
    assert_ne!(d1, CacheOutcome::Hit);
}

#[test]
fn shard_stats_sum_to_the_global_counters() {
    let _g = lock();
    let prep = prepared_university();
    let cache = PlanCache::new();
    assert!(cache.shard_count() >= 1);
    assert!(
        cache.shard_count().is_power_of_two(),
        "masked shard selection requires a power of two"
    );
    let queries = [
        "select x.name from x in Person where x.age < 28",
        "select x.name from x in Student where x.age < 28",
        "select x.age from x in Person where x.age < 28",
        "select x.name from x in Person",
        "select x.name from x in Person where x.age > 28",
        "select x.name from x in Student where x.age > 28",
    ];
    let before = obs::snapshot();
    for q in queries {
        let (_r, d) = prep.optimize_cached(&cache, q).unwrap();
        assert_eq!(d, CacheOutcome::Miss, "{q} should be a distinct template");
    }
    // Per-shard lengths are the sharded view of the same population.
    assert_eq!(cache.shard_lens().iter().sum::<usize>(), cache.len());
    assert_eq!(cache.len(), queries.len());
    // Invalidation counts each dropped entry once, summed over shards —
    // identical to the old single-map total.
    cache.invalidate();
    let delta = obs::snapshot().since(&before);
    assert_eq!(
        delta.counter(obs::Counter::PlanCacheInvalidations),
        queries.len() as u64
    );
    assert_eq!(
        delta.counter(obs::Counter::PlanCacheMisses),
        queries.len() as u64
    );
    assert!(cache.is_empty());
    assert!(cache.shard_lens().iter().all(|&l| l == 0));
}

#[test]
fn shard_capacity_bounds_the_population() {
    let _g = lock();
    let prep = prepared_university();
    // Four shards, one template each: eight distinct templates must
    // evict down to at most four entries, never grow past the budget.
    let cache = PlanCache::with_shards(4, 4);
    assert_eq!(cache.shard_count(), 4);
    for class in ["Person", "Student"] {
        for (proj, pred) in [
            ("x.name", "x.age < 28"),
            ("x.age", "x.age < 28"),
            ("x.name", "x.age > 28 and x.age < 90"),
            ("x.age", "x.age > 28 and x.age < 90"),
        ] {
            let q = format!("select {proj} from x in {class} where {pred}");
            prep.optimize_cached(&cache, &q).unwrap();
        }
    }
    assert!(
        cache.len() <= 4,
        "population {} exceeds the 4-entry budget",
        cache.len()
    );
    assert!(cache.shard_lens().iter().all(|&l| l <= 1));
}

#[test]
fn distinct_templates_do_not_collide() {
    let _g = lock();
    let prep = prepared_university();
    let cache = PlanCache::new();
    let (_r, d0) = prep
        .optimize_cached(&cache, "select x.name from x in Person where x.age < 30")
        .unwrap();
    assert_eq!(d0, CacheOutcome::Miss);
    let (_r, d1) = prep
        .optimize_cached(&cache, "select x.name from x in Student where x.age < 30")
        .unwrap();
    assert_eq!(
        d1,
        CacheOutcome::Miss,
        "different class, different template"
    );
    assert_eq!(cache.len(), 2);
}
