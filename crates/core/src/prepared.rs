//! The prepared (immutable) optimizer and the parameterized semantic-plan
//! cache — the amortization layer behind `sqo-service`.
//!
//! A [`PreparedOptimizer`] freezes the expensive per-schema work (ODL
//! parse, Step-1 translation, residue compilation) so concurrent workers
//! can share it behind an `Arc` and run queries with `&self`. A
//! [`PlanCache`] then amortizes the Step-3 search across a workload: the
//! cache key is the query's parameter-normalized canonical fingerprint
//! ([`Query::canonical_template`]), so `age < 30` and `age < 40` share
//! one entry, with the residue-applicability conditions re-checked
//! cheaply against the bound constants (the *parameter signature*), and
//! the cached rewrite set retargeted onto the new variables and
//! constants before Step 4 runs.
//!
//! ## Why the parameter signature is sound
//!
//! Every decision the Step-3 search takes about a constant is a pairwise
//! comparison: a query constant against an IC/view constant (residue
//! applicability, chase refutation) or against another query constant.
//! The signature records, for each lifted parameter, its type and its
//! ordering against every such *threshold* — all constants of the
//! compiled constraint set, the views, the query's own non-lifted
//! constants — and against every earlier parameter. Two parameter
//! vectors with equal signatures therefore drive every comparison to the
//! same outcome, so the search would traverse the same path; the cached
//! outcome transfers. A parameter that *equals* a threshold forces the
//! new parameter to equal it too, so retargeting can never corrupt an
//! IC-derived constant.

use crate::error::Result;
use crate::optimizer::{outcome_to_verdict, OptimizationReport, SemanticOptimizer};
use sqo_datalog::search::{self, Outcome, SearchConfig, Variant};
use sqo_datalog::transform::TransformContext;
use sqo_datalog::{Atom, CanonicalTemplate, Comparison, Literal, Query, Term};
use sqo_obs as obs;
use sqo_odl::Schema;
use sqo_oql::SelectQuery;
use sqo_translate::{translate_query, Catalog};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use sqo_datalog::term::{Const, Var};

/// How a cached-path optimization was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The template matched and the parameter signature agreed: the
    /// cached rewrite set was retargeted, skipping the Step-3 search.
    Hit,
    /// The template matched but the parameter signature differed; a
    /// fresh search ran and re-populated the entry.
    Rebind,
    /// No entry for the template; a fresh search ran and was cached.
    Miss,
    /// The request overrode the session's search strategy, so the cache
    /// was skipped both ways: entries are computed under the session
    /// default and an override must not read or pollute them.
    Bypass,
}

impl CacheOutcome {
    /// Stable lowercase label (used in wire responses and logs).
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Rebind => "rebind",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypass => "bypass",
        }
    }
}

/// One cached plan: the search outcome of the template representative,
/// plus everything needed to decide applicability and retarget.
struct CacheEntry {
    /// Schema generation the entry was computed under.
    generation: u64,
    /// Thresholds the signature was computed against (knowledge-base
    /// constants plus the template's non-lifted constants).
    thresholds: Vec<Const>,
    /// The representative's parameter signature.
    signature: Vec<u8>,
    /// The representative's bound parameters, in template order.
    repr_params: Vec<Const>,
    /// The representative's variables, in canonical order.
    repr_var_order: Vec<Var>,
    /// The representative's search outcome.
    outcome: Outcome,
}

/// A bounded, invalidation-aware cache of Step-3 search outcomes keyed
/// by [`Query::canonical_template`] fingerprints.
///
/// Thread-safe; share one per prepared schema. Entries live in
/// `shard_count()` independently locked shards selected by template
/// hash, so concurrent warm lookups of *different* templates never
/// contend on a common mutex (the serving event loop's workers hit this
/// path on every cached query). The observable behaviour is that of the
/// former single-map cache: `len()` sums the shards, and the
/// `plan_cache.*` counters are bumped exactly as before, so per-shard
/// stats always sum to the old global totals.
///
/// [`PlanCache::invalidate`] bumps the generation and drops every entry
/// in every shard — call it whenever the constraint set changes (the
/// service does this on IC reload).
pub struct PlanCache {
    shards: Box<[Mutex<HashMap<u64, CacheEntry>>]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    shard_mask: u64,
    generation: AtomicU64,
    /// Per-shard entry budget (total capacity / shard count).
    shard_capacity: usize,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

/// Default shard count: enough that a worker pool in the tens never
/// queues on one lock, small enough that `len()`/`invalidate()` stay
/// cheap.
const DEFAULT_SHARDS: usize = 16;

impl PlanCache {
    /// A cache holding up to 4096 templates across 16 shards.
    pub fn new() -> Self {
        PlanCache::with_capacity(4096)
    }

    /// A cache holding up to `capacity` templates; when a shard is full,
    /// an arbitrary entry of that shard is evicted per insertion.
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// A cache with an explicit shard count (rounded up to a power of
    /// two) splitting `capacity` evenly.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.clamp(1, 1 << 16).next_power_of_two();
        let capacity = capacity.max(1);
        PlanCache {
            shards: (0..shards)
                .map(|_| Mutex::new(HashMap::new()))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
            shard_mask: (shards - 1) as u64,
            generation: AtomicU64::new(0),
            shard_capacity: capacity.div_ceil(shards).max(1),
        }
    }

    /// The shard holding `hash`. Template hashes are already avalanched,
    /// but fold the high half in so shard choice never depends on low
    /// bits alone.
    fn shard(&self, hash: u64) -> &Mutex<HashMap<u64, CacheEntry>> {
        &self.shards[((hash ^ (hash >> 32)) & self.shard_mask) as usize]
    }

    /// Number of independently locked shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Entries per shard, in shard order. Sums to [`PlanCache::len`].
    pub fn shard_lens(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.lock().map(|e| e.len()).unwrap_or(0))
            .collect()
    }

    /// The current invalidation generation.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Number of cached templates (summed over shards).
    pub fn len(&self) -> usize {
        self.shard_lens().iter().sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan and bump the generation, so plans computed
    /// under the previous constraint set can never be served again.
    /// Bumps [`obs::Counter::PlanCacheInvalidations`] once per dropped
    /// entry (summed over shards, so the total matches the old
    /// single-map behaviour exactly).
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        for shard in self.shards.iter() {
            if let Ok(mut entries) = shard.lock() {
                obs::add(obs::Counter::PlanCacheInvalidations, entries.len() as u64);
                entries.clear();
            }
        }
    }
}

/// An immutable, eagerly compiled optimizer: schema, Step-1 catalog,
/// compiled residues and search configuration, shareable across threads
/// with `&self` (wrap in an `Arc` for the service layer).
pub struct PreparedOptimizer {
    schema: Schema,
    catalog: Catalog,
    search: SearchConfig,
    ctx: TransformContext,
    generation: u64,
    /// Constants of the compiled knowledge base (constraints + views):
    /// the schema-level part of every parameter-signature threshold set.
    kb_consts: Vec<Const>,
}

impl PreparedOptimizer {
    /// Compile `opt` (Step 1 + residues) and freeze it at generation 0.
    pub fn new(opt: SemanticOptimizer) -> Self {
        let (schema, catalog, search, ctx) = opt.into_parts();
        let mut kb: BTreeSet<Const> = BTreeSet::new();
        for ic in &ctx.residues.constraints {
            collect_head_consts(&ic.head, &mut kb);
            for l in &ic.body {
                collect_literal_consts(l, &mut kb);
            }
        }
        for v in &ctx.views {
            for t in &v.head.args {
                collect_term_const(t, &mut kb);
            }
            for l in &v.body {
                collect_literal_consts(l, &mut kb);
            }
        }
        PreparedOptimizer {
            schema,
            catalog,
            search,
            ctx,
            generation: 0,
            kb_consts: kb.into_iter().collect(),
        }
    }

    /// The same prepared optimizer stamped with an explicit generation
    /// (the service bumps this on every reload).
    pub fn with_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The schema generation this instance was prepared under.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The Step-1 catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Number of compiled residues.
    pub fn residue_count(&self) -> usize {
        self.ctx.residues.len()
    }

    /// Optimize an OQL query without consulting a cache. Step 1 never
    /// runs here — it already ran at preparation time.
    pub fn optimize(&self, oql_src: &str) -> Result<OptimizationReport> {
        let original = sqo_oql::parse_oql(oql_src)?;
        self.optimize_query(&original)
    }

    /// Optimize a parsed OQL query without consulting a cache.
    pub fn optimize_query(&self, original: &SelectQuery) -> Result<OptimizationReport> {
        self.optimize_query_backend(original, search::Backend::Parallel)
    }

    /// Optimize a parsed OQL query with an explicit Step-3 search
    /// backend (see [`sqo_datalog::search::Backend`]).
    pub fn optimize_query_backend(
        &self,
        original: &SelectQuery,
        backend: search::Backend,
    ) -> Result<OptimizationReport> {
        let _span = obs::span!("pipeline.optimize");
        let before = obs::snapshot();
        obs::bump(obs::Counter::OptimizerQueries);
        let translation = translate_query(original, &self.schema, &self.catalog)?;
        let datalog = translation.query.clone();
        let outcome = search::optimize_with_backend(&datalog, &self.ctx, &self.search, backend);
        let verdict = outcome_to_verdict(outcome, &datalog, &translation, &self.catalog)?;
        Ok(OptimizationReport {
            original: original.clone(),
            normalized: translation.normalized,
            datalog,
            verdict,
            stats: obs::snapshot().since(&before),
        })
    }

    /// The Step-3 search strategy this instance was prepared with.
    pub fn strategy(&self) -> search::Strategy {
        self.search.strategy
    }

    /// Optimize an OQL query with an explicit Step-3 search strategy,
    /// overriding the prepared default. Always uncached: plan-cache
    /// entries are computed under the session default, so an override
    /// must neither read nor populate them (see [`CacheOutcome::Bypass`]).
    pub fn optimize_with_strategy(
        &self,
        oql_src: &str,
        strategy: search::Strategy,
    ) -> Result<OptimizationReport> {
        let original = sqo_oql::parse_oql(oql_src)?;
        self.optimize_query_strategy(&original, strategy)
    }

    /// [`PreparedOptimizer::optimize_with_strategy`] on a parsed query.
    pub fn optimize_query_strategy(
        &self,
        original: &SelectQuery,
        strategy: search::Strategy,
    ) -> Result<OptimizationReport> {
        let _span = obs::span!("pipeline.optimize");
        let before = obs::snapshot();
        obs::bump(obs::Counter::OptimizerQueries);
        let translation = translate_query(original, &self.schema, &self.catalog)?;
        let datalog = translation.query.clone();
        let cfg = SearchConfig {
            strategy,
            ..self.search.clone()
        };
        let outcome = search::optimize(&datalog, &self.ctx, &cfg);
        let verdict = outcome_to_verdict(outcome, &datalog, &translation, &self.catalog)?;
        Ok(OptimizationReport {
            original: original.clone(),
            normalized: translation.normalized,
            datalog,
            verdict,
            stats: obs::snapshot().since(&before),
        })
    }

    /// Optimize an OQL query through the semantic-plan cache.
    pub fn optimize_cached(
        &self,
        cache: &PlanCache,
        oql_src: &str,
    ) -> Result<(OptimizationReport, CacheOutcome)> {
        let original = sqo_oql::parse_oql(oql_src)?;
        self.optimize_query_cached(cache, &original)
    }

    /// Optimize a parsed OQL query through the semantic-plan cache: on a
    /// template hit with a matching parameter signature the Step-3
    /// search is skipped entirely and the cached rewrite set is
    /// retargeted onto this query's variables and constants.
    pub fn optimize_query_cached(
        &self,
        cache: &PlanCache,
        original: &SelectQuery,
    ) -> Result<(OptimizationReport, CacheOutcome)> {
        let _span = obs::span!("pipeline.optimize");
        let before = obs::snapshot();
        obs::bump(obs::Counter::OptimizerQueries);
        let translation = translate_query(original, &self.schema, &self.catalog)?;
        let datalog = translation.query.clone();

        let (template, cached) = {
            let _s = obs::span!("cache.lookup");
            let template = datalog.canonical_template();
            let cached = self.try_cached(cache, &template);
            (template, cached)
        };
        let (outcome, disposition) = match cached {
            Ok(outcome) => {
                obs::bump(obs::Counter::PlanCacheHits);
                (outcome, CacheOutcome::Hit)
            }
            Err(had_entry) => {
                let disposition = if had_entry {
                    obs::bump(obs::Counter::PlanCacheRebinds);
                    CacheOutcome::Rebind
                } else {
                    obs::bump(obs::Counter::PlanCacheMisses);
                    CacheOutcome::Miss
                };
                let outcome = search::optimize(&datalog, &self.ctx, &self.search);
                self.store(cache, &datalog, &template, &outcome);
                (outcome, disposition)
            }
        };
        let verdict = outcome_to_verdict(outcome, &datalog, &translation, &self.catalog)?;
        Ok((
            OptimizationReport {
                original: original.clone(),
                normalized: translation.normalized,
                datalog,
                verdict,
                stats: obs::snapshot().since(&before),
            },
            disposition,
        ))
    }

    /// Look the template up and, when applicable, return the cached
    /// outcome retargeted onto this query. `Err(had_entry)` asks the
    /// caller to run a fresh search.
    fn try_cached(
        &self,
        cache: &PlanCache,
        template: &CanonicalTemplate,
    ) -> std::result::Result<Outcome, bool> {
        let entries = cache.shard(template.hash).lock().map_err(|_| false)?;
        let Some(entry) = entries.get(&template.hash) else {
            return Err(false);
        };
        if entry.generation != self.generation
            || entry.repr_params.len() != template.params.len()
            || entry.repr_var_order.len() != template.var_order.len()
        {
            return Err(true);
        }
        if param_signature(&template.params, &entry.thresholds) != entry.signature {
            return Err(true);
        }
        let outcome = entry.outcome.clone();
        let retarget = Retarget::new(
            &entry.repr_var_order,
            &template.var_order,
            &entry.repr_params,
            &template.params,
        );
        drop(entries);
        let _s = obs::span!("cache.retarget");
        Ok(retarget.outcome(outcome))
    }

    /// Insert (or replace) the template's entry with a fresh outcome.
    fn store(
        &self,
        cache: &PlanCache,
        datalog: &Query,
        template: &CanonicalTemplate,
        outcome: &Outcome,
    ) {
        let mut thresholds: BTreeSet<Const> = self.kb_consts.iter().copied().collect();
        collect_unlifted_consts(datalog, &mut thresholds);
        let thresholds: Vec<Const> = thresholds.into_iter().collect();
        let entry = CacheEntry {
            generation: self.generation,
            signature: param_signature(&template.params, &thresholds),
            thresholds,
            repr_params: template.params.clone(),
            repr_var_order: template.var_order.clone(),
            outcome: outcome.clone(),
        };
        if let Ok(mut entries) = cache.shard(template.hash).lock() {
            if entries.len() >= cache.shard_capacity && !entries.contains_key(&template.hash) {
                if let Some(&k) = entries.keys().next() {
                    entries.remove(&k);
                }
            }
            entries.insert(template.hash, entry);
        }
    }
}

/// The parameter signature: for each parameter, its value family and its
/// ordering against every threshold and every earlier parameter. Equal
/// signatures guarantee every constant-vs-constant decision the search
/// could take comes out identically (see the module docs).
fn param_signature(params: &[Const], thresholds: &[Const]) -> Vec<u8> {
    fn family(c: &Const) -> u8 {
        match c {
            Const::Int(_) => 0,
            Const::Real(_) => 1,
            Const::Str(_) => 2,
            Const::Bool(_) => 3,
            Const::Oid(_) => 4,
        }
    }
    fn rel(a: &Const, b: &Const) -> u8 {
        match a.order(b) {
            Some(std::cmp::Ordering::Less) => 0,
            Some(std::cmp::Ordering::Equal) => 1,
            Some(std::cmp::Ordering::Greater) => 2,
            None if a.same_value(b) => 3,
            None => 4,
        }
    }
    let mut sig = Vec::with_capacity(params.len() * (thresholds.len() + params.len() + 1));
    for (i, p) in params.iter().enumerate() {
        sig.push(family(p));
        for t in thresholds {
            sig.push(rel(p, t));
        }
        for q in &params[..i] {
            sig.push(rel(p, q));
        }
    }
    sig
}

fn collect_term_const(t: &Term, out: &mut BTreeSet<Const>) {
    if let Term::Const(c) = t {
        out.insert(*c);
    }
}

fn collect_literal_consts(l: &Literal, out: &mut BTreeSet<Const>) {
    match l {
        Literal::Pos(a) | Literal::Neg(a) => {
            for t in &a.args {
                collect_term_const(t, out);
            }
        }
        Literal::Cmp(c) => {
            collect_term_const(&c.lhs, out);
            collect_term_const(&c.rhs, out);
        }
    }
}

fn collect_head_consts(h: &sqo_datalog::ConstraintHead, out: &mut BTreeSet<Const>) {
    match h {
        sqo_datalog::ConstraintHead::None => {}
        sqo_datalog::ConstraintHead::Atom(a) | sqo_datalog::ConstraintHead::NegAtom(a) => {
            for t in &a.args {
                collect_term_const(t, out);
            }
        }
        sqo_datalog::ConstraintHead::Cmp(c) => {
            collect_term_const(&c.lhs, out);
            collect_term_const(&c.rhs, out);
        }
    }
}

/// The query's constants that were *not* lifted into parameters: atom
/// arguments, ground comparisons, and projection constants — mirroring
/// exactly what [`Query::canonical_template`] keeps in the shape.
fn collect_unlifted_consts(q: &Query, out: &mut BTreeSet<Const>) {
    for t in &q.projection {
        collect_term_const(t, out);
    }
    for l in &q.body {
        match l {
            Literal::Cmp(c)
                if matches!(
                    (&c.lhs, &c.rhs),
                    (Term::Var(_), Term::Const(_)) | (Term::Const(_), Term::Var(_))
                ) =>
            {
                // Lifted: exactly the parameter slots.
            }
            other => collect_literal_consts(other, out),
        }
    }
}

/// Maps the cached representative's variables and parameters onto a new
/// member of the same template family. Variables the search introduced
/// (IC existentials) are renamed to fresh names that cannot capture any
/// target variable.
struct Retarget {
    var_map: HashMap<Var, Var>,
    const_map: HashMap<Const, Const>,
    used: HashSet<Var>,
    fresh: HashMap<Var, Var>,
    next_fresh: usize,
}

impl Retarget {
    fn new(from_vars: &[Var], to_vars: &[Var], from_params: &[Const], to_params: &[Const]) -> Self {
        let var_map: HashMap<Var, Var> = from_vars
            .iter()
            .copied()
            .zip(to_vars.iter().copied())
            .collect();
        let const_map: HashMap<Const, Const> = from_params
            .iter()
            .copied()
            .zip(to_params.iter().copied())
            .collect();
        Retarget {
            var_map,
            const_map,
            used: to_vars.iter().copied().collect(),
            fresh: HashMap::new(),
            next_fresh: 0,
        }
    }

    fn var(&mut self, v: Var) -> Var {
        if let Some(&w) = self.var_map.get(&v) {
            return w;
        }
        if let Some(&w) = self.fresh.get(&v) {
            return w;
        }
        // A search-introduced existential: keep its name when free,
        // otherwise derive a non-capturing one.
        let mut cand = v;
        while self.used.contains(&cand) {
            cand = Var::new(format!("{}_c{}", v.name(), self.next_fresh));
            self.next_fresh += 1;
        }
        self.used.insert(cand);
        self.fresh.insert(v, cand);
        cand
    }

    fn term(&mut self, t: &Term) -> Term {
        match t {
            Term::Var(v) => Term::Var(self.var(*v)),
            Term::Const(c) => Term::Const(*self.const_map.get(c).unwrap_or(c)),
        }
    }

    fn atom(&mut self, a: &Atom) -> Atom {
        Atom::new(a.pred, a.args.iter().map(|t| self.term(t)).collect())
    }

    fn literal(&mut self, l: &Literal) -> Literal {
        match l {
            Literal::Pos(a) => Literal::Pos(self.atom(a)),
            Literal::Neg(a) => Literal::Neg(self.atom(a)),
            Literal::Cmp(c) => {
                Literal::Cmp(Comparison::new(self.term(&c.lhs), c.op, self.term(&c.rhs)))
            }
        }
    }

    fn query(&mut self, q: &Query) -> Query {
        Query {
            name: q.name.clone(),
            projection: q.projection.iter().map(|t| self.term(t)).collect(),
            body: q.body.iter().map(|l| self.literal(l)).collect(),
        }
    }

    /// Retarget a cached outcome. Variant queries are rewritten onto the
    /// new variables/constants; derivation steps are kept verbatim — the
    /// provenance describes the template representative's derivation,
    /// which is step-for-step the derivation of the new query.
    fn outcome(mut self, o: Outcome) -> Outcome {
        match o {
            Outcome::Contradiction { .. } => o,
            Outcome::Equivalents(variants) => Outcome::Equivalents(
                variants
                    .into_iter()
                    .map(|v| Variant {
                        query: self.query(&v.query),
                        steps: v.steps,
                    })
                    .collect(),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_datalog::{CmpOp, R64};

    #[test]
    fn signature_orders_against_thresholds_and_peers() {
        let thresholds = [Const::Int(30)];
        let a = param_signature(&[Const::Int(18)], &thresholds);
        let b = param_signature(&[Const::Int(25)], &thresholds);
        let c = param_signature(&[Const::Int(40)], &thresholds);
        let eq = param_signature(&[Const::Int(30)], &thresholds);
        assert_eq!(a, b, "both below the threshold");
        assert_ne!(a, c, "opposite sides of the threshold");
        assert_ne!(a, eq, "equality with a threshold is its own class");
        // Pairwise parameter order matters too.
        let lo_hi = param_signature(&[Const::Int(1), Const::Int(2)], &[]);
        let hi_lo = param_signature(&[Const::Int(2), Const::Int(1)], &[]);
        assert_ne!(lo_hi, hi_lo);
        // And value families are distinguished even when order is moot.
        assert_ne!(
            param_signature(&[Const::Int(1)], &[]),
            param_signature(&[Const::Real(R64::new(1.0))], &[]),
        );
    }

    #[test]
    fn retarget_renames_without_capture() {
        // Representative used X; the new query calls that variable N2 —
        // which collides with the existential N2 the search introduced.
        let from = [Var::new("X")];
        let to = [Var::new("N2")];
        let mut rt = Retarget::new(&from, &to, &[Const::Int(30)], &[Const::Int(40)]);
        let variant = Query::new(
            "q",
            vec![Term::var("X")],
            vec![
                Literal::pos("p", vec![Term::var("X"), Term::var("N2")]),
                Literal::cmp(Term::var("X"), CmpOp::Lt, Term::int(30)),
            ],
        );
        let out = rt.query(&variant);
        assert_eq!(out.projection, vec![Term::var("N2")]);
        let Literal::Pos(a) = &out.body[0] else {
            panic!()
        };
        assert_eq!(a.args[0], Term::var("N2"));
        assert_ne!(a.args[1], Term::var("N2"), "existential must not capture");
        let Literal::Cmp(c) = &out.body[1] else {
            panic!()
        };
        assert_eq!(c.rhs, Term::int(40), "parameter remapped");
    }
}
