//! The semantic optimizer facade: the full pipeline of Figure 2.
//!
//! ```text
//!  ODL schema ──(Step 1)──► Datalog relations + ICs ─┐
//!                                                    ▼ (semantic
//!  application ICs ────────────────────────────► residues  compilation)
//!                                                    │
//!  OQL query ──(Step 2)──► Datalog query ──(Step 3)──┤ SQO: equivalent
//!                                                    ▼ queries/contradiction
//!  optimized OQL ◄──(Step 4: DATALOG_to_OQL)── literal deltas
//! ```
//!
//! Steps 1–2 and 4 are linear; Step 3 is the exponential search, bounded
//! by [`SearchConfig`] heuristics (Section 4.1).

use crate::error::Result;
use sqo_datalog::residue::{CompileOptions, ResidueSet};
use sqo_datalog::search::{self, Backend, Delta, Outcome, SearchConfig, Step};
use sqo_datalog::transform::TransformContext;
use sqo_datalog::{parser as dl_parser, Constraint, Query, Rule};
use sqo_obs as obs;
use sqo_odl::Schema;
use sqo_oql::SelectQuery;
use sqo_translate::{apply_delta, translate_query, translate_schema, Catalog, QueryTranslation};

/// One semantically equivalent query, in both representations.
#[derive(Debug, Clone)]
pub struct EquivalentQuery {
    /// The Datalog form.
    pub datalog: Query,
    /// The literal-level difference from the original Datalog query.
    pub delta: Delta,
    /// The transformation steps that produced it.
    pub steps: Vec<Step>,
    /// The OQL form (Step 4 output).
    pub oql: SelectQuery,
    /// Edits that could not be applied at the OQL level.
    pub oql_warnings: Vec<String>,
}

impl EquivalentQuery {
    /// The derivation chain: which residue, source IC, and transformation
    /// kind produced each step. The unchanged original carries the synthetic
    /// `original` chain, so the provenance is never empty.
    pub fn provenance(&self) -> obs::Provenance {
        obs::Provenance::from_steps(self.steps.iter().map(Step::provenance).collect())
    }
}

/// The outcome of optimizing one OQL query.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// The query can never return answers; skip evaluation entirely.
    Contradiction {
        /// The justifying constraint, if known.
        ic_name: Option<String>,
        /// Human-readable explanation.
        note: String,
        /// Transformation steps applied before the contradiction surfaced
        /// (empty when the original query is already contradictory).
        steps: Vec<Step>,
    },
    /// The semantically equivalent queries (original first).
    Equivalents(Vec<EquivalentQuery>),
}

/// The full report of one optimization run.
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// The query as parsed.
    pub original: SelectQuery,
    /// The normalized (one-dot) form actually translated.
    pub normalized: SelectQuery,
    /// The Step 2 Datalog translation.
    pub datalog: Query,
    /// The Step 3/4 outcome.
    pub verdict: Verdict,
    /// Counter/span deltas attributable to this one optimization run
    /// (difference of [`obs::snapshot`] taken around the pipeline).
    pub stats: obs::Snapshot,
}

impl OptimizationReport {
    /// Whether SQO proved the query unsatisfiable.
    pub fn is_contradiction(&self) -> bool {
        matches!(self.verdict, Verdict::Contradiction { .. })
    }

    /// The equivalent queries (empty on contradiction).
    pub fn equivalents(&self) -> &[EquivalentQuery] {
        match &self.verdict {
            Verdict::Contradiction { .. } => &[],
            Verdict::Equivalents(v) => v,
        }
    }

    /// Equivalents other than the unchanged original.
    pub fn proper_rewrites(&self) -> impl Iterator<Item = &EquivalentQuery> {
        self.equivalents().iter().filter(|e| !e.delta.is_empty())
    }

    /// Pick the cheapest equivalent against a concrete object base, using
    /// the index-aware cost model: the winning equivalent, its index, and
    /// the per-candidate estimates (empty on contradiction). Works on
    /// cached reports too, so the service's warm plan-cache path can
    /// re-run plan selection against the current store without repeating
    /// the semantic search.
    pub fn best_plan<'a>(
        &'a self,
        db: &sqo_objdb::ObjectDb,
    ) -> Option<(usize, &'a EquivalentQuery, Vec<f64>)> {
        let eqs = self.equivalents();
        if eqs.is_empty() {
            return None;
        }
        let queries: Vec<Query> = eqs.iter().map(|e| e.datalog.clone()).collect();
        let (best, costs) = sqo_objdb::choose_best(db, &queries);
        Some((best, &eqs[best], costs))
    }

    /// The refutation chain when the verdict is a contradiction: the
    /// transformation steps leading to the refuted variant, closed by a
    /// `contradiction` step naming the refuting IC.
    pub fn contradiction_provenance(&self) -> Option<obs::Provenance> {
        let Verdict::Contradiction {
            ic_name,
            note,
            steps,
        } = &self.verdict
        else {
            return None;
        };
        let mut chain: Vec<obs::ProvenanceStep> = steps.iter().map(Step::provenance).collect();
        chain.push(obs::ProvenanceStep {
            kind: "contradiction",
            residue: None,
            ic: ic_name.clone(),
            detail: note.clone(),
        });
        Some(obs::Provenance { steps: chain })
    }

    /// Human-readable account of the run: the verdict, each equivalent
    /// query with its provenance chain, and the per-run counters/spans.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("query: {}\n", self.original));
        out.push_str(&format!("datalog: {}\n", self.datalog));
        match &self.verdict {
            Verdict::Contradiction { .. } => {
                out.push_str("verdict: contradiction (query can return no answers)\n");
                if let Some(p) = self.contradiction_provenance() {
                    out.push_str(&format!("{p}\n"));
                }
            }
            Verdict::Equivalents(eqs) => {
                out.push_str(&format!("verdict: {} equivalent quer{}\n", eqs.len(), {
                    if eqs.len() == 1 {
                        "y"
                    } else {
                        "ies"
                    }
                }));
                for (i, e) in eqs.iter().enumerate() {
                    out.push_str(&format!("--- equivalent {} ---\n", i + 1));
                    out.push_str(&format!("oql: {}\n", e.oql));
                    out.push_str(&format!("datalog: {}\n", e.datalog));
                    out.push_str(&format!("provenance:\n{}\n", e.provenance()));
                    for w in &e.oql_warnings {
                        out.push_str(&format!("warning: {w}\n"));
                    }
                }
            }
        }
        out.push_str(&self.stats.to_text());
        out
    }

    /// Machine-readable account of the run, with stable key order.
    ///
    /// Top-level keys: `query`, `datalog`, `verdict`, then either
    /// `contradiction` (object with `ic`, `note`, `provenance`) or
    /// `equivalents` (array of objects with `oql`, `datalog`, `changed`,
    /// `warnings`, `provenance`), then `stats` (the [`obs::Snapshot`]).
    pub fn explain_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "\"query\": {},\n",
            obs::json_string(&self.original.to_string())
        ));
        out.push_str(&format!(
            "\"datalog\": {},\n",
            obs::json_string(&self.datalog.to_string())
        ));
        match &self.verdict {
            Verdict::Contradiction { ic_name, note, .. } => {
                out.push_str("\"verdict\": \"contradiction\",\n");
                out.push_str(&format!(
                    "\"contradiction\": {{\"ic\": {}, \"note\": {}, \"provenance\": {}}},\n",
                    obs::json_opt_string(ic_name.as_deref()),
                    obs::json_string(note),
                    self.contradiction_provenance()
                        .unwrap_or_default()
                        .to_json()
                ));
            }
            Verdict::Equivalents(eqs) => {
                out.push_str("\"verdict\": \"equivalents\",\n");
                out.push_str("\"equivalents\": [");
                for (i, e) in eqs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\n  {{\"oql\": {}, \"datalog\": {}, \"changed\": {}, \
                         \"warnings\": [{}], \"provenance\": {}}}",
                        obs::json_string(&e.oql.to_string()),
                        obs::json_string(&e.datalog.to_string()),
                        !e.delta.is_empty(),
                        e.oql_warnings
                            .iter()
                            .map(|w| obs::json_string(w))
                            .collect::<Vec<_>>()
                            .join(", "),
                        e.provenance().to_json()
                    ));
                }
                out.push_str("\n],\n");
            }
        }
        out.push_str(&format!("\"stats\": {}\n}}", self.stats.to_json()));
        out
    }
}

/// The result of optimizing a `union` query: one report per branch.
#[derive(Debug, Clone)]
pub struct UnionReport {
    /// Per-branch optimization reports, in source order.
    pub branches: Vec<OptimizationReport>,
}

impl UnionReport {
    /// Branches SQO proved empty (they can be dropped from evaluation).
    pub fn pruned(&self) -> impl Iterator<Item = &OptimizationReport> {
        self.branches.iter().filter(|b| b.is_contradiction())
    }

    /// The surviving branches.
    pub fn surviving(&self) -> impl Iterator<Item = &OptimizationReport> {
        self.branches.iter().filter(|b| !b.is_contradiction())
    }

    /// Whether the whole union is provably empty.
    pub fn is_empty_union(&self) -> bool {
        self.branches.iter().all(|b| b.is_contradiction())
    }

    /// Contradiction provenance for every pruned branch: the branch index
    /// (source order), the refuting IC when known, and the full refutation
    /// chain — so a caller can answer "why was this branch dropped?".
    pub fn pruned_provenance(&self) -> Vec<(usize, Option<String>, obs::Provenance)> {
        self.branches
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let Verdict::Contradiction { ic_name, .. } = &b.verdict else {
                    return None;
                };
                Some((i, ic_name.clone(), b.contradiction_provenance()?))
            })
            .collect()
    }
}

/// The semantic query optimizer: owns the schema, its Step 1 translation,
/// application-specific constraints, views, and the compiled residues.
pub struct SemanticOptimizer {
    schema: Schema,
    catalog: Catalog,
    user_constraints: Vec<Constraint>,
    views: Vec<Rule>,
    search: SearchConfig,
    compile_options: CompileOptions,
    /// Compiled transform context (rebuilt lazily after changes).
    ctx: Option<TransformContext>,
}

impl SemanticOptimizer {
    /// Create an optimizer for a schema (runs Step 1).
    pub fn new(schema: Schema) -> Self {
        let catalog = translate_schema(&schema);
        SemanticOptimizer {
            schema,
            catalog,
            user_constraints: Vec::new(),
            views: Vec::new(),
            search: SearchConfig::default(),
            compile_options: CompileOptions::default(),
            ctx: None,
        }
    }

    /// Create an optimizer from ODL source text.
    pub fn from_odl(src: &str) -> Result<Self> {
        Ok(SemanticOptimizer::new(Schema::parse(src)?))
    }

    /// An optimizer over the paper's Figure 1 university schema.
    pub fn university() -> Self {
        SemanticOptimizer::new(sqo_odl::fixtures::university_schema())
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The Step 1 catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All integrity constraints: schema-derived plus user-supplied.
    pub fn constraints(&self) -> Vec<Constraint> {
        let mut out = self.catalog.constraints.clone();
        out.extend(self.user_constraints.iter().cloned());
        out
    }

    /// Add an application-specific integrity constraint (the ODMG-93
    /// extension the paper argues for).
    pub fn add_constraint(&mut self, ic: Constraint) {
        self.user_constraints.push(ic);
        self.ctx = None;
    }

    /// Parse and add a constraint, e.g.
    /// `"ic IC1: Salary > 40000 <- faculty(OID, Salary)"`. Attribute
    /// positions refer to the Step 1 relations (full arity) — use
    /// [`Self::catalog`] to inspect them.
    pub fn add_constraint_text(&mut self, src: &str) -> Result<()> {
        let ic = dl_parser::parse_constraint(src)?;
        self.add_constraint(ic);
        Ok(())
    }

    /// Register an access-support-relation view definition; its head
    /// predicate becomes available for folding and for Step 4 output.
    /// If the head name collides with an existing class/relationship
    /// relation, the view is registered under a qualified name and the
    /// rule's head is renamed accordingly.
    pub fn add_view(&mut self, mut rule: Rule) {
        let pred = self
            .catalog
            .register_view(rule.head.pred.name(), rule.head.arity());
        rule.head.pred = pred;
        self.views.push(rule);
        self.ctx = None;
    }

    /// Parse and register a view, e.g.
    /// `"asr(X, W) <- takes(X, Y), has_ta(Y, W)"`.
    pub fn add_view_text(&mut self, src: &str) -> Result<()> {
        let rule = dl_parser::parse_rule(src)?;
        self.add_view(rule);
        Ok(())
    }

    /// Tune the Step 3 search heuristics.
    pub fn set_search_config(&mut self, cfg: SearchConfig) {
        self.search = cfg;
    }

    /// Select the Step 3 search strategy (`--search=bfs|best-first`),
    /// leaving every other heuristic untouched.
    pub fn set_search_strategy(&mut self, strategy: search::Strategy) {
        self.search.strategy = strategy;
    }

    /// Tune semantic compilation (IC derivation).
    pub fn set_compile_options(&mut self, opts: CompileOptions) {
        self.compile_options = opts;
        self.ctx = None;
    }

    /// Run (or reuse) semantic compilation: residues attached to
    /// relations, chase context assembled.
    pub fn compile(&mut self) -> &TransformContext {
        if self.ctx.is_none() {
            let _span = obs::span!("step1.compile");
            let residues = ResidueSet::compile_with(self.constraints(), &self.compile_options);
            self.ctx = Some(TransformContext::new(
                residues,
                self.views.clone(),
                self.catalog.functional.clone(),
            ));
        }
        self.ctx.as_ref().expect("just compiled")
    }

    /// Number of compiled residues (after derivation).
    pub fn residue_count(&mut self) -> usize {
        self.compile().residues.len()
    }

    /// Translate an OQL query (Step 2) without optimizing.
    pub fn translate(&self, oql: &SelectQuery) -> Result<QueryTranslation> {
        Ok(translate_query(oql, &self.schema, &self.catalog)?)
    }

    /// Optimize an OQL query through the full pipeline.
    pub fn optimize(&mut self, oql_src: &str) -> Result<OptimizationReport> {
        let original = sqo_oql::parse_oql(oql_src)?;
        self.optimize_query(&original)
    }

    /// Optimize a parsed OQL query through the full pipeline.
    pub fn optimize_query(&mut self, original: &SelectQuery) -> Result<OptimizationReport> {
        self.optimize_query_backend(original, Backend::Parallel)
    }

    /// Optimize a parsed OQL query, forcing a specific Step-3 search
    /// backend. Both backends yield byte-identical reports; differential
    /// harnesses (the fuzz oracle, the cross-config determinism tests)
    /// call this to assert it.
    pub fn optimize_query_backend(
        &mut self,
        original: &SelectQuery,
        backend: Backend,
    ) -> Result<OptimizationReport> {
        let _span = obs::span!("pipeline.optimize");
        let before = obs::snapshot();
        obs::bump(obs::Counter::OptimizerQueries);
        let translation = self.translate(original)?;
        let datalog = translation.query.clone();
        let search_cfg = self.search.clone();
        let ctx = self.compile();
        let outcome = search::optimize_with_backend(&datalog, ctx, &search_cfg, backend);
        let verdict = outcome_to_verdict(outcome, &datalog, &translation, &self.catalog)?;
        Ok(OptimizationReport {
            original: original.clone(),
            normalized: translation.normalized,
            datalog,
            verdict,
            stats: obs::snapshot().since(&before),
        })
    }

    /// Optimize a top-level `union` of select-from-where queries.
    /// Each branch is optimized independently; branches proved
    /// contradictory are *pruned* (they contribute no answers), which is
    /// the set-expression payoff Section 4.3 alludes to.
    pub fn optimize_union(&mut self, src: &str) -> Result<UnionReport> {
        let branches = sqo_oql::parse_oql_union(src)?;
        let mut reports = Vec::with_capacity(branches.len());
        for b in &branches {
            reports.push(self.optimize_query(b)?);
        }
        Ok(UnionReport { branches: reports })
    }

    /// Optimize a raw Datalog query (skipping Steps 2/4) — useful for
    /// experiments phrased directly in the Datalog representation, like
    /// the paper's Example 1.
    pub fn optimize_datalog(&mut self, q: &Query) -> Outcome {
        let cfg = self.search.clone();
        let ctx = self.compile();
        search::optimize(q, ctx, &cfg)
    }

    /// Freeze this optimizer into an immutable, shareable
    /// [`crate::prepared::PreparedOptimizer`]: Step-1 translation and
    /// residue compilation run once here and are reused for every query
    /// optimized through the prepared instance.
    pub fn prepare(self) -> crate::prepared::PreparedOptimizer {
        crate::prepared::PreparedOptimizer::new(self)
    }

    /// Decompose into the pieces a prepared optimizer keeps, compiling
    /// first so the transform context is guaranteed present.
    pub(crate) fn into_parts(mut self) -> (Schema, Catalog, SearchConfig, TransformContext) {
        self.compile();
        let ctx = self.ctx.take().expect("just compiled");
        (self.schema, self.catalog, self.search, ctx)
    }
}

/// Steps 3½–4 epilogue shared by [`SemanticOptimizer`] and
/// [`crate::prepared::PreparedOptimizer`]: turn a search outcome into a
/// verdict, back-translating every surviving variant to OQL.
pub(crate) fn outcome_to_verdict(
    outcome: Outcome,
    datalog: &Query,
    translation: &QueryTranslation,
    catalog: &Catalog,
) -> Result<Verdict> {
    Ok(match outcome {
        Outcome::Contradiction {
            ic_name,
            note,
            steps,
        } => {
            obs::bump(obs::Counter::OptimizerContradictions);
            Verdict::Contradiction {
                ic_name,
                note,
                steps,
            }
        }
        Outcome::Equivalents(variants) => {
            let mut out = Vec::with_capacity(variants.len());
            for v in variants {
                let delta = search::delta(datalog, &v.query);
                let edit = apply_delta(&translation.normalized, &translation.map, catalog, &delta)?;
                out.push(EquivalentQuery {
                    datalog: v.query,
                    delta,
                    steps: v.steps,
                    oql: edit.query,
                    oql_warnings: edit.warnings,
                });
            }
            obs::add(
                obs::Counter::OptimizerRewrites,
                out.iter().filter(|e| !e.delta.is_empty()).count() as u64,
            );
            Verdict::Equivalents(out)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqo_datalog::Literal;

    /// Example 1 of the paper, end to end at the Datalog level.
    #[test]
    fn example1_relational_contradiction() {
        let mut opt =
            SemanticOptimizer::from_odl("interface StudentR { attribute string name; };").unwrap();
        // Stand-alone relational setting: declare the IC directly.
        opt.add_constraint_text("ic: Age > 30 <- faculty(Sec, Fac, Age).")
            .unwrap();
        let q = dl_parser::parse_query(
            "Q(Name) <- student(St, Name), takes_section(St, Sec), \
             faculty(Sec, Fac, Age), Age < 18",
        )
        .unwrap();
        assert!(opt.optimize_datalog(&q).is_contradiction());
    }

    /// Application 1: the method-monotonicity consequence IC3 makes the
    /// Example 2 query contradictory.
    #[test]
    fn application1_contradiction_via_method_ic() {
        let mut opt = SemanticOptimizer::university();
        // IC3: Value > 3000 <- taxes_withheld(OID, 10%, Value), faculty(OID, ...).
        opt.add_constraint_text(
            "ic IC3: Value > 3000 <- taxes_withheld(OID, 0.1, Value), \
             faculty(OID, N, A, S, R, Ad).",
        )
        .unwrap();
        let report = opt
            .optimize(
                r#"select z.name, w.city
                   from x in Student
                        y in x.takes
                        z in y.is_taught_by
                        w in z.address
                   where x.name = "john" and z.taxes_withheld(10%) < 1000"#,
            )
            .unwrap();
        assert!(report.is_contradiction(), "verdict: {:?}", report.verdict);
        if let Verdict::Contradiction { ic_name, .. } = &report.verdict {
            assert_eq!(ic_name.as_deref(), Some("IC3"));
        }
    }

    /// Application 2 end to end: OQL in, scope-reduced OQL out.
    #[test]
    fn application2_end_to_end() {
        let mut opt = SemanticOptimizer::university();
        // IC4: faculty members are 30 or older (ages sit at position 2).
        opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, Name, Age, S, R, Ad).")
            .unwrap();
        let report = opt
            .optimize("select x.name from x in Person where x.age < 30")
            .unwrap();
        assert!(!report.is_contradiction());
        let reduced = report
            .proper_rewrites()
            .find(|e| {
                e.datalog
                    .body
                    .iter()
                    .any(|l| matches!(l, Literal::Neg(a) if a.pred.name() == "faculty"))
            })
            .expect("scope-reduced variant");
        assert_eq!(
            reduced.oql.to_string(),
            "select x.name\nfrom x in Person,\n     x not in Faculty\nwhere x.age < 30"
        );
        assert!(
            reduced.oql_warnings.is_empty(),
            "{:?}",
            reduced.oql_warnings
        );
    }

    /// Application 3 end to end: the key constraint is generated by
    /// Step 1 (Person.name is a key), so no user IC is needed.
    #[test]
    fn application3_end_to_end() {
        let mut opt = SemanticOptimizer::university();
        let report = opt
            .optimize(
                r#"select list(x.student_id, t.employee_id)
                   from x in Student
                        y in x.takes
                        z in y.is_taught_by
                        t in TA
                        v in t.takes
                        w in v.is_taught_by
                   where z.name = w.name"#,
            )
            .unwrap();
        assert!(!report.is_contradiction());
        // A variant replaces the name join with an OID comparison.
        let rewritten = report
            .proper_rewrites()
            .find(|e| {
                let s = e.oql.to_string();
                s.contains("z = w") && !s.contains("z.name = w.name")
            })
            .unwrap_or_else(|| {
                panic!(
                    "no key-join rewrite among {} variants: {:#?}",
                    report.equivalents().len(),
                    report
                        .equivalents()
                        .iter()
                        .map(|e| e.oql.to_string())
                        .collect::<Vec<_>>()
                )
            });
        // Constructor retained.
        assert!(rewritten
            .oql
            .to_string()
            .contains("list(x.student_id, t.employee_id)"));
    }

    /// Application 4 end to end (the Q case): the ASR fold.
    #[test]
    fn application4_end_to_end() {
        let mut opt = SemanticOptimizer::university();
        opt.add_view_text(
            "asr(X, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), has_ta(V, W)",
        )
        .unwrap();
        let report = opt
            .optimize(
                r#"select w
                   from x in Student
                        y in x.takes
                        z in y.is_section_of
                        v in z.has_sections
                        w in v.has_ta
                   where x.name = "james""#,
            )
            .unwrap();
        let folded = report
            .proper_rewrites()
            .find(|e| {
                e.datalog.positive_atoms().any(|a| a.pred.name() == "asr")
                    && e.datalog.body.len() <= 3
            })
            .expect("folded variant");
        let text = folded.oql.to_string();
        assert!(text.contains("w in x.asr"), "{text}");
        assert!(!text.contains("takes"), "{text}");
    }

    #[test]
    fn no_knowledge_returns_only_original() {
        let mut opt = SemanticOptimizer::university();
        let report = opt.optimize("select x.name from x in Course").unwrap_err();
        // Course has no extent member named name? It has `title`/`number`…
        let _ = report; // UnknownMember
        let mut opt = SemanticOptimizer::university();
        let report = opt.optimize("select x.title from x in Course").unwrap();
        // Key(Course.number) exists but isn't applicable; subclass ICs
        // aren't applicable. Only the original should remain, modulo
        // harmless variants.
        assert!(!report.equivalents().is_empty());
        assert!(report.equivalents()[0].delta.is_empty());
    }

    #[test]
    fn view_name_collision_is_qualified_not_aliased() {
        let mut opt = SemanticOptimizer::university();
        // A view named like the Student class must not alias the class
        // relation.
        opt.add_view_text("student(X, W) <- takes(X, Y), has_ta(Y, W)")
            .unwrap();
        let view_kind = opt
            .catalog()
            .relation_by_pred(&"view_student".into())
            .map(|d| d.kind.clone());
        assert!(
            matches!(view_kind, Some(sqo_translate::RelKind::View { .. })),
            "view registered under a qualified name"
        );
        // The class relation is untouched.
        assert!(matches!(
            opt.catalog()
                .relation_by_pred(&"student".into())
                .map(|d| d.kind.clone()),
            Some(sqo_translate::RelKind::Class { .. })
        ));
        // And the fold machinery uses the qualified predicate.
        let report = opt
            .optimize("select w from x in Student, y in x.takes, w in y.has_ta")
            .unwrap();
        assert!(report.proper_rewrites().any(|e| e
            .datalog
            .positive_atoms()
            .any(|a| a.pred.name() == "view_student")));
    }

    #[test]
    fn union_branch_pruning() {
        let mut opt = SemanticOptimizer::university();
        opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
            .unwrap();
        let report = opt
            .optimize_union(
                "select x.name from x in Faculty where x.age < 20 \
                 union select x.name from x in Student where x.age < 20",
            )
            .unwrap();
        assert_eq!(report.branches.len(), 2);
        assert_eq!(report.pruned().count(), 1, "faculty branch refuted by IC4");
        assert_eq!(report.surviving().count(), 1);
        assert!(!report.is_empty_union());
        // Both branches contradictory ⇒ the whole union is empty.
        let empty = opt
            .optimize_union(
                "select x.name from x in Faculty where x.age < 20 \
                 union select x.name from x in Faculty where x.age < 10",
            )
            .unwrap();
        assert!(empty.is_empty_union());
    }

    #[test]
    fn residue_count_reflects_compilation() {
        let mut opt = SemanticOptimizer::university();
        let base = opt.residue_count();
        assert!(base > 0, "schema ICs compile to residues");
        opt.add_constraint_text("ic: Salary > 40000 <- faculty(X, N, A, Salary, R, Ad).")
            .unwrap();
        assert!(opt.residue_count() > base);
    }
}
