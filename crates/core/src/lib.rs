#![warn(missing_docs)]

//! # sqo-core
//!
//! The public facade of the semantic query optimizer reproducing
//! *"Semantic Query Optimization for Object Databases"* (Grant, Gryz,
//! Minker, Raschid — ICDE 1997): the full Figure 2 pipeline from ODL
//! schema and OQL query to semantically equivalent optimized queries, a
//! contradiction verdict, or both representations side by side.
//!
//! ```
//! use sqo_core::SemanticOptimizer;
//!
//! let mut opt = SemanticOptimizer::university();
//! opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).").unwrap();
//! let report = opt
//!     .optimize("select x.name from x in Person where x.age < 30")
//!     .unwrap();
//! assert!(!report.is_contradiction());
//! assert!(report.proper_rewrites().count() > 0);
//! ```

pub mod error;
pub mod optimizer;
pub mod prepared;

pub use error::{Result, SqoError};
pub use optimizer::{EquivalentQuery, OptimizationReport, SemanticOptimizer, UnionReport, Verdict};
pub use prepared::{CacheOutcome, PlanCache, PreparedOptimizer};

// Re-export the pieces callers typically need alongside the facade.
pub use sqo_datalog::residue::CompileOptions;
pub use sqo_datalog::search::{Backend, Delta, Outcome, SearchConfig, Step};
pub use sqo_datalog::{Constraint, Query, Rule};
pub use sqo_odl::Schema;
pub use sqo_oql::SelectQuery;
