//! Unified error type for the optimizer facade.

use std::fmt;

/// Any error from the pipeline's steps.
#[derive(Debug)]
pub enum SqoError {
    /// ODL parsing / schema validation.
    Odl(sqo_odl::OdlError),
    /// OQL parsing.
    Oql(sqo_oql::OqlError),
    /// Datalog parsing or evaluation.
    Datalog(sqo_datalog::DatalogError),
    /// Schema/query translation.
    Translate(sqo_translate::TranslateError),
    /// Object database.
    ObjDb(sqo_objdb::ObjDbError),
}

impl fmt::Display for SqoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqoError::Odl(e) => e.fmt(f),
            SqoError::Oql(e) => e.fmt(f),
            SqoError::Datalog(e) => e.fmt(f),
            SqoError::Translate(e) => e.fmt(f),
            SqoError::ObjDb(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SqoError {}

impl From<sqo_odl::OdlError> for SqoError {
    fn from(e: sqo_odl::OdlError) -> Self {
        SqoError::Odl(e)
    }
}
impl From<sqo_oql::OqlError> for SqoError {
    fn from(e: sqo_oql::OqlError) -> Self {
        SqoError::Oql(e)
    }
}
impl From<sqo_datalog::DatalogError> for SqoError {
    fn from(e: sqo_datalog::DatalogError) -> Self {
        SqoError::Datalog(e)
    }
}
impl From<sqo_translate::TranslateError> for SqoError {
    fn from(e: sqo_translate::TranslateError) -> Self {
        SqoError::Translate(e)
    }
}
impl From<sqo_objdb::ObjDbError> for SqoError {
    fn from(e: sqo_objdb::ObjDbError) -> Self {
        SqoError::ObjDb(e)
    }
}

/// Result alias for the facade.
pub type Result<T> = std::result::Result<T, SqoError>;
