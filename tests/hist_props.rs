//! Property tests for the telemetry layer's streaming latency histogram:
//! `merge` must behave like a commutative monoid (so the
//! thread-local-then-merge discipline gives byte-identical results no
//! matter how many threads recorded or in which order their cells were
//! folded in), and `quantile` must never panic and always answer inside
//! the recorded range.

use proptest::prelude::*;
use semantic_sqo::obs::Histogram;

fn build(samples: &[u64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn merged(parts: &[&Histogram]) -> Histogram {
    let mut out = Histogram::new();
    for p in parts {
        out.merge(p);
    }
    out
}

// Samples spanning the full u64 range, including the overflow-prone
// extremes the bucket math must survive.
fn sample_strategy() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(1u64),
        Just(u64::MAX),
        Just(u64::MAX - 1),
        0u64..1_000,
        1_000u64..10_000_000_000,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge is associative and commutative, with the sequential
    /// single-histogram build as its reference — so any parenthesization
    /// over any permutation of per-thread histograms yields the same
    /// bytes.
    #[test]
    fn histogram_merge_is_a_commutative_monoid(
        a in proptest::collection::vec(sample_strategy(), 0..40),
        b in proptest::collection::vec(sample_strategy(), 0..40),
        c in proptest::collection::vec(sample_strategy(), 0..40),
    ) {
        let (ha, hb, hc) = (build(&a), build(&b), build(&c));
        let left = merged(&[&merged(&[&ha, &hb]), &hc]);
        let right = merged(&[&ha, &merged(&[&hb, &hc])]);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &merged(&[&hc, &hb, &ha]));
        // Reference: one histogram fed every sample directly.
        let all: Vec<u64> =
            a.iter().chain(b.iter()).chain(c.iter()).copied().collect();
        prop_assert_eq!(&left, &build(&all));
        // The empty histogram is the identity element.
        prop_assert_eq!(&merged(&[&left, &Histogram::new()]), &left);
    }

    /// Merging per-thread histograms recorded on real OS threads equals
    /// the sequential build, in every completion order.
    #[test]
    fn cross_thread_merge_equals_sequential(
        samples in proptest::collection::vec(sample_strategy(), 1..120),
        threads in 2usize..5,
    ) {
        let chunks: Vec<Vec<u64>> = (0..threads)
            .map(|t| {
                samples
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % threads == t)
                    .map(|(_, &v)| v)
                    .collect()
            })
            .collect();
        let mut per_thread: Vec<Histogram> = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(|| build(chunk)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let sequential = build(&samples);
        let forward: Vec<&Histogram> = per_thread.iter().collect();
        prop_assert_eq!(&merged(&forward), &sequential);
        per_thread.reverse();
        let reversed: Vec<&Histogram> = per_thread.iter().collect();
        prop_assert_eq!(&merged(&reversed), &sequential);
    }

    /// quantile never panics, answers None exactly on the empty
    /// histogram, and always lands within [min, max] of what was
    /// recorded (half-octave bucketing cannot escape the range because
    /// the estimate is clamped to the observed extremes).
    #[test]
    fn quantiles_stay_inside_the_recorded_range(
        samples in proptest::collection::vec(sample_strategy(), 0..80),
        p_mille in 0u64..1001,
    ) {
        let h = build(&samples);
        let q = h.quantile(p_mille as f64 / 1000.0);
        if samples.is_empty() {
            prop_assert_eq!(q, None);
        } else {
            let v = q.expect("non-empty histogram answers every quantile");
            let lo = *samples.iter().min().unwrap();
            let hi = *samples.iter().max().unwrap();
            prop_assert!(v >= lo && v <= hi, "q={} outside [{}, {}]", v, lo, hi);
        }
    }
}

#[test]
fn single_sample_quantiles_are_exact_at_extremes() {
    for v in [0, 1, 2, 3, 1_000_003, u64::MAX - 1, u64::MAX] {
        let h = build(&[v]);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(p), Some(v), "single sample {v} at p={p}");
        }
    }
}
