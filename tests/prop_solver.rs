//! Property tests for the comparison-constraint solver: soundness and
//! (restricted) completeness against a brute-force model finder over a
//! small domain.

use proptest::prelude::*;
use semantic_sqo::datalog::{CmpOp, Comparison, ConstraintSet, Sat, Term};

const DOMAIN: std::ops::Range<i64> = 0..5;
const VARS: [&str; 4] = ["A", "B", "C", "D"];

fn term_strategy() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0..VARS.len()).prop_map(|i| Term::var(VARS[i])),
        DOMAIN.prop_map(Term::int),
    ]
}

fn op_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn cmp_strategy() -> impl Strategy<Value = Comparison> {
    (term_strategy(), op_strategy(), term_strategy())
        .prop_map(|(l, op, r)| Comparison::new(l, op, r))
}

/// Brute force: is there an integer assignment over the small domain
/// satisfying all comparisons?
fn brute_force_sat(cmps: &[Comparison]) -> bool {
    let eval_term = |t: &Term, asg: &[i64]| -> i64 {
        match t {
            Term::Const(c) => match c {
                semantic_sqo::datalog::Const::Int(v) => *v,
                _ => unreachable!("ints only in this strategy"),
            },
            Term::Var(v) => {
                let i = VARS.iter().position(|n| *n == v.name()).unwrap();
                asg[i]
            }
        }
    };
    let n = DOMAIN.end - DOMAIN.start;
    let total = n.pow(VARS.len() as u32);
    (0..total).any(|mut code| {
        let mut asg = [0i64; 4];
        for slot in &mut asg {
            *slot = DOMAIN.start + (code % n);
            code /= n;
        }
        cmps.iter().all(|c| {
            let l = eval_term(&c.lhs, &asg);
            let r = eval_term(&c.rhs, &asg);
            c.op.test(l.cmp(&r))
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Soundness: if the solver says UNSAT, no integer model exists.
    /// (The converse can fail only through density — `X > 1 ∧ X < 2` is
    /// real-satisfiable but has no integer model — so it is not asserted.)
    #[test]
    fn solver_unsat_implies_no_integer_model(cmps in prop::collection::vec(cmp_strategy(), 1..7)) {
        let solver = ConstraintSet::from_comparisons(cmps.iter());
        if solver.check() == Sat::Unsatisfiable {
            prop_assert!(!brute_force_sat(&cmps), "solver UNSAT but model exists: {cmps:?}");
        }
    }

    /// Implication soundness: if the solver says `set ⊨ c`, every integer
    /// model of the set satisfies `c`.
    #[test]
    fn implication_is_sound(
        cmps in prop::collection::vec(cmp_strategy(), 1..5),
        candidate in cmp_strategy(),
    ) {
        let solver = ConstraintSet::from_comparisons(cmps.iter());
        if solver.check() == Sat::Satisfiable && solver.implies(&candidate) {
            // set ∧ ¬candidate must have no integer model.
            let mut with_neg = cmps.clone();
            with_neg.push(candidate.negate());
            prop_assert!(
                !brute_force_sat(&with_neg),
                "claimed implication fails: {cmps:?} ⊭ {candidate}"
            );
        }
    }

    /// Monotonicity: asserting more constraints never turns UNSAT into SAT.
    #[test]
    fn assertion_is_monotone(cmps in prop::collection::vec(cmp_strategy(), 2..7)) {
        let mut solver = ConstraintSet::new();
        let mut unsat_seen = false;
        for c in &cmps {
            let state = solver.assert_cmp(c);
            if unsat_seen {
                prop_assert_eq!(state, Sat::Unsatisfiable);
            }
            unsat_seen |= state == Sat::Unsatisfiable;
        }
    }

    /// Every constraint set implies each of its own members.
    #[test]
    fn implies_own_members(cmps in prop::collection::vec(cmp_strategy(), 1..5)) {
        let solver = ConstraintSet::from_comparisons(cmps.iter());
        if solver.check() == Sat::Satisfiable {
            for c in &cmps {
                prop_assert!(solver.implies(c), "set does not imply member {c}");
            }
        }
    }

    /// Flipping a comparison never changes satisfiability.
    #[test]
    fn flip_preserves_sat(cmps in prop::collection::vec(cmp_strategy(), 1..6)) {
        let flipped: Vec<Comparison> = cmps.iter().map(Comparison::flip).collect();
        let a = ConstraintSet::from_comparisons(cmps.iter()).check();
        let b = ConstraintSet::from_comparisons(flipped.iter()).check();
        prop_assert_eq!(a, b);
    }
}
