//! Shape assertions for the experiment suite: the qualitative claims of
//! EXPERIMENTS.md, checked as hard test invariants (not timings — those
//! are criterion's business — but the *who-wins-and-how* structure).

use semantic_sqo::objdb::{choose_best, execute, execute_with, ExecOptions};
use semantic_sqo::SemanticOptimizer;
use sqo_bench::{
    asr_scenario, contradiction_scenario, key_join_scenario, scope_reduction_scenario,
};

/// A1: detection work is database-independent; the refuted query indeed
/// has zero answers.
#[test]
fn a1_detection_is_database_independent() {
    let (mut opt, oql, db) = contradiction_scenario(150);
    // Detection never touches the object base (opt holds no reference to
    // db at all) and reports a contradiction.
    let report = opt.optimize(oql).unwrap();
    assert!(report.is_contradiction());
    // Evaluating anyway scans real tuples yet returns nothing.
    let plain = SemanticOptimizer::university();
    let t = plain
        .translate(&semantic_sqo::oql::parse_oql(oql).unwrap())
        .unwrap();
    let (rows, cost) = execute(&db, &t.query).unwrap();
    assert!(rows.is_empty());
    assert!(cost.tuples_examined > 0);
}

/// A2: optimized object fetches equal (1 - f) · |Person| — the paper's
/// "retrieve only those object instances". Measured against the
/// scan-only reference executor, which isolates the *semantic* effect:
/// under the indexed engine the original already range-probes `age`, so
/// the exact scan counts below only hold without declared indexes.
#[test]
fn a2_fetches_scale_with_complement() {
    for f in [0.25f64, 0.75] {
        let s = scope_reduction_scenario(400, f);
        let scan = ExecOptions::scan_only();
        let (r1, c1) = execute_with(&s.db, &s.original, scan).unwrap();
        let (r2, c2) = execute_with(&s.db, &s.optimized, scan).unwrap();
        assert_eq!(r1.len(), r2.len(), "answers preserved at f={f}");
        let person_extent = s.db.extent("Person").len() as u64;
        let faculty_extent = s.db.extent("Faculty").len() as u64;
        assert_eq!(c1.object_fetches, person_extent, "original scans everyone");
        assert_eq!(
            c2.object_fetches,
            person_extent - faculty_extent,
            "optimized fetches only the complement at f={f}"
        );
        assert!(c2.extent_probes > 0, "extent machinery engaged");
        // The indexed engine returns the same answers and never fetches
        // more than the scan-only reference.
        let (r1i, c1i) = execute(&s.db, &s.original).unwrap();
        assert_eq!(r1i.len(), r1.len(), "indexed answers preserved at f={f}");
        assert!(c1i.object_fetches <= c1.object_fetches);
    }
}

/// A3: the rewrite eliminates *all* Faculty object fetches (OID
/// comparison instead of name comparison) and reduces total fetches.
#[test]
fn a3_faculty_fetches_drop_to_zero() {
    let s = key_join_scenario(48);
    let (r1, c1) = execute(&s.db, &s.original).unwrap();
    let (r2, c2) = execute(&s.db, &s.optimized).unwrap();
    assert_eq!(r1.len(), r2.len(), "answers preserved");
    let orig_faculty = c1.per_pred.get("faculty").copied().unwrap_or(0);
    let opt_faculty = c2.per_pred.get("faculty").copied().unwrap_or(0);
    assert!(orig_faculty > 0, "original fetches faculty objects");
    assert_eq!(opt_faculty, 0, "optimized compares OIDs without fetching");
    assert!(c2.object_fetches < c1.object_fetches);
}

/// A4: the fold removes the relationship-chain traversals in favour of
/// view probes, and the cost model prefers it.
#[test]
fn a4_fold_wins_traversals_and_cost_model() {
    let s = asr_scenario(120, 12);
    let (r1, c1) = execute(&s.db, &s.original).unwrap();
    let (r2, c2) = execute(&s.db, &s.optimized).unwrap();
    assert_eq!(r1.len(), r2.len(), "answers preserved");
    assert!(c2.view_probes > 0, "ASR actually probed");
    assert!(
        c2.rel_traversals + c2.view_probes < c1.rel_traversals,
        "fold reduces relation accesses: {} + {} vs {}",
        c2.rel_traversals,
        c2.view_probes,
        c1.rel_traversals
    );
    // The cardinality-based chooser (the paper's "cost-based optimizer")
    // prefers the folded query.
    let (best, costs) = choose_best(&s.db, &[s.original.clone(), s.optimized.clone()]);
    assert_eq!(best, 1, "estimates: {costs:?}");
}

/// F2: Step 3 cost grows with the number of applicable ICs, and the
/// variant count is bounded by the heuristics.
#[test]
fn f2_step3_growth_is_bounded_by_heuristics() {
    use sqo_bench::optimizer_with_n_ics;
    let counts: Vec<usize> = [0usize, 3, 6]
        .iter()
        .map(|&n| {
            let (mut opt, q) = optimizer_with_n_ics(n);
            opt.optimize(q).unwrap().equivalents().len()
        })
        .collect();
    assert!(counts[0] < counts[1] && counts[1] <= counts[2] + 1);
    // The width bound holds even with many ICs.
    let (mut opt, q) = optimizer_with_n_ics(16);
    assert!(opt.optimize(q).unwrap().equivalents().len() <= 64 + 1);
}
