//! Cross-crate feature tests for engine behaviours that the paper's
//! examples rely on implicitly: equality propagation in evaluation,
//! search policies, the plan chooser, method-relation functionality, and
//! Step 4 edge cases.

use semantic_sqo::datalog::eval::answer_query;
use semantic_sqo::datalog::parser::{parse_program, parse_query, Statement};
use semantic_sqo::datalog::program::EdbDatabase;
use semantic_sqo::datalog::search::JoinIntro;
use semantic_sqo::datalog::Const;
use semantic_sqo::objdb::{execute, UniversityConfig};
use semantic_sqo::{SearchConfig, SemanticOptimizer, Verdict};

fn db_from(src: &str) -> EdbDatabase {
    let mut db = EdbDatabase::new();
    for s in parse_program(src).unwrap() {
        match s {
            Statement::Fact(f) => {
                db.insert_fact(&f).unwrap();
            }
            other => panic!("facts only: {other:?}"),
        }
    }
    db
}

/// Equality propagation: `Z = W` must act as a join condition (bind W
/// from Z), not as a post-cross-product filter. Detectable through the
/// tuple-examination counters.
#[test]
fn equality_propagates_as_join_condition() {
    let mut src = String::new();
    for i in 0..50 {
        src.push_str(&format!("left({i}, {}). right({i}, {}). ", i % 7, i % 5));
    }
    let db = db_from(&src);
    let q = parse_query("Q(X, A, B) <- left(X, A), right(Y, B), X = Y").unwrap();
    let (rows, stats) = answer_query(&db, &q).unwrap();
    assert_eq!(rows.len(), 50);
    // With propagation: 50 scans + 50 indexed probes ≈ 100; a cross join
    // would examine 50 + 2500.
    assert!(
        stats.tuples_examined <= 150,
        "equality did not propagate: {} tuples examined",
        stats.tuples_examined
    );
}

#[test]
fn ground_equality_binds_variable() {
    let db = db_from("p(1, 10). p(2, 20). p(3, 30).");
    let q = parse_query("Q(B) <- X = 2, p(X, B)").unwrap();
    let (rows, _) = answer_query(&db, &q).unwrap();
    assert_eq!(rows, vec![vec![Const::Int(20)]]);
}

#[test]
fn chained_equalities_propagate_transitively() {
    let db = db_from("p(1). q(1). r(1). p(2). q(2). r(3).");
    let q = parse_query("Q(X) <- p(X), q(Y), r(Z), X = Y, Y = Z").unwrap();
    let (rows, _) = answer_query(&db, &q).unwrap();
    assert_eq!(rows, vec![vec![Const::Int(1)]]);
}

/// JoinIntro::All really explores unrestricted additions (and therefore
/// finds superclass-membership variants ViewRelevant skips).
#[test]
fn join_intro_all_adds_superclass_atoms() {
    let mut opt = SemanticOptimizer::university();
    opt.set_search_config(SearchConfig {
        join_intro: JoinIntro::All,
        max_depth: 1,
        ..Default::default()
    });
    let report = opt
        .optimize("select x.student_id from x in Student")
        .unwrap();
    let has_person_variant = report.proper_rewrites().any(|e| {
        e.datalog
            .positive_atoms()
            .any(|a| a.pred.name() == "person")
    });
    assert!(has_person_variant, "All policy should add person(X, …)");

    let mut opt2 = SemanticOptimizer::university();
    opt2.set_search_config(SearchConfig {
        join_intro: JoinIntro::Off,
        max_depth: 1,
        ..Default::default()
    });
    let report2 = opt2
        .optimize("select x.student_id from x in Student")
        .unwrap();
    assert!(report2.proper_rewrites().all(|e| {
        !e.datalog
            .positive_atoms()
            .any(|a| a.pred.name() == "person")
    }));
}

/// Method relations are functional in (receiver, args): the same receiver
/// and rate always produce one value, and different rates may differ.
#[test]
fn method_materialization_is_functional() {
    let data = UniversityConfig {
        faculty: 6,
        students: 0,
        persons: 0,
        courses: 0,
        ..Default::default()
    }
    .build()
    .unwrap();
    let q1 = parse_query("Q(X, V) <- faculty__extent(X), taxes_withheld(X, 0.1, V)").unwrap();
    let (rows1, _) = execute(&data.db, &q1).unwrap();
    assert_eq!(rows1.len(), 6, "one value per faculty member");
    let q2 = parse_query("Q(X, V) <- faculty__extent(X), taxes_withheld(X, 0.2, V)").unwrap();
    let (rows2, _) = execute(&data.db, &q2).unwrap();
    assert_eq!(rows2.len(), 6);
    // Rates differ → values differ (salary > 0).
    for (a, b) in rows1.iter().zip(&rows2) {
        assert_ne!(a[1], b[1]);
    }
}

/// IC2-style monotonicity can be expressed and is usable: a residue over
/// two method atoms.
#[test]
fn method_monotonicity_ic_applies() {
    let mut opt = SemanticOptimizer::university();
    // If two faculty have taxes at the same rate and one earns more, the
    // higher earner pays at least as much (IC2 of the paper).
    opt.add_constraint_text(
        "ic IC2: Value1 >= Value2 <- taxes_withheld(O1, Rate, Value1), \
         faculty(O1, N1, A1, Salary1, R1, Ad1), taxes_withheld(O2, Rate, Value2), \
         faculty(O2, N2, A2, Salary2, R2, Ad2), Salary1 > Salary2.",
    )
    .unwrap();
    assert!(opt.residue_count() > 0);
    // A query over two method applications with conflicting comparisons
    // is refuted: z earns more than w but pays less at the same rate.
    let report = opt
        .optimize(
            r#"select z.name
               from z in Faculty, w in Faculty
               where z.salary > w.salary
                 and z.taxes_withheld(10%) < 100
                 and w.taxes_withheld(10%) > 200"#,
        )
        .unwrap();
    assert!(
        report.is_contradiction(),
        "IC2 must refute the inverted tax ordering: {:?}",
        report.verdict
    );
}

/// The plan chooser ranks the scope-reduced variant at least as cheap as
/// the original once the faculty fraction is high.
#[test]
fn plan_chooser_consistency() {
    use semantic_sqo::objdb::estimate_cost;
    let data = UniversityConfig {
        persons: 50,
        faculty: 400,
        students: 0,
        courses: 0,
        ..Default::default()
    }
    .build()
    .unwrap();
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    let report = opt
        .optimize("select x.name from x in Person where x.age < 30")
        .unwrap();
    let Verdict::Equivalents(eqs) = &report.verdict else {
        panic!()
    };
    let orig = estimate_cost(&data.db, &eqs[0].datalog);
    let reduced = eqs
        .iter()
        .find(|e| !e.delta.is_empty())
        .map(|e| estimate_cost(&data.db, &e.datalog))
        .expect("reduced variant");
    // Under indexed execution the original query already reaches an
    // ordered-index range probe on `age`, which restricts the fetches
    // physically — so the scope-reduced variant no longer has to win.
    // It must still price within a modest constant factor (it pays one
    // extent anti-join probe per surviving binding), not orders of
    // magnitude.
    assert!(
        reduced <= orig * 1.5,
        "anti-join should not be estimated drastically worse: {reduced} vs {orig}"
    );
}

/// Step 4 reordering: an added ASR entry that binds a variable used by a
/// surviving entry is hoisted before it.
#[test]
fn datalog_to_oql_reorders_binders() {
    let mut opt = SemanticOptimizer::university();
    opt.add_view_text("asr2(X, W) <- takes(X, Y), has_ta(Y, W)")
        .unwrap();
    let report = opt
        .optimize(
            r#"select n.city
               from x in Student
                    y in x.takes
                    w in y.has_ta
                    n in w.address"#,
        )
        .unwrap();
    // Find a folded variant that kept `n in w.address` but replaced the
    // chain with asr2.
    let folded = report
        .proper_rewrites()
        .find(|e| {
            e.datalog.positive_atoms().any(|a| a.pred.name() == "asr2")
                && !e.datalog.positive_atoms().any(|a| a.pred.name() == "takes")
        })
        .map(|e| e.oql.to_string());
    if let Some(text) = folded {
        let asr_pos = text.find("w in x.asr2").expect("asr entry");
        let use_pos = text.find("n in w.address").expect("surviving use");
        assert!(asr_pos < use_pos, "binder must precede use:\n{text}");
    }
}

/// Distinct is preserved through the pipeline (extralogical, like
/// constructors).
#[test]
fn distinct_survives_rewrites() {
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    let report = opt
        .optimize("select distinct x.name from x in Person where x.age < 30")
        .unwrap();
    for e in report.equivalents() {
        assert!(e.oql.distinct, "distinct lost in: {}", e.oql);
    }
}

/// An inherited method resolves through the chain (taxes_withheld is
/// declared on Employee, called on Faculty).
#[test]
fn inherited_method_resolution() {
    let opt = SemanticOptimizer::university();
    let t = opt
        .translate(
            &semantic_sqo::oql::parse_oql(
                "select z.name from z in Faculty where z.taxes_withheld(5%) > 100",
            )
            .unwrap(),
        )
        .unwrap();
    assert!(t
        .query
        .positive_atoms()
        .any(|a| a.pred.name() == "taxes_withheld"));
}

/// Existentially quantified queries (Section 6 future work) run through
/// the whole pipeline: the existential desugars into the conjunctive
/// body, so residues and scope reduction apply unchanged.
#[test]
fn exists_queries_optimize_end_to_end() {
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    let report = opt
        .optimize(
            "select x.name from x in Person \
             where x.age < 30 and exists f in Faculty : f.name = x.name",
        )
        .unwrap();
    // The scope reduction still applies to x.
    assert!(report
        .proper_rewrites()
        .any(|e| e.oql.to_string().contains("x not in Faculty")));
    // And a contradictory existential refutes the whole query.
    let report = opt
        .optimize(
            "select x.name from x in Person \
             where exists f in Faculty : f.age < 20",
        )
        .unwrap();
    assert!(report.is_contradiction());
}

/// Exists over a relationship translates to the relationship atom.
#[test]
fn exists_over_relationship_is_a_join() {
    let data = UniversityConfig {
        students: 30,
        courses: 4,
        persons: 0,
        faculty: 5,
        ..Default::default()
    }
    .build()
    .unwrap();
    let opt = SemanticOptimizer::university();
    let t = opt
        .translate(
            &semantic_sqo::oql::parse_oql(
                "select x.student_id from x in Student \
                 where exists s in x.takes : s.number != \"nope\"",
            )
            .unwrap(),
        )
        .unwrap();
    let (rows, _) = execute(&data.db, &t.query).unwrap();
    // Every generated student takes at least one section.
    assert_eq!(rows.len(), 30 + data.db.extent("TA").len());
}
