//! The committed fuzz regression corpus must keep replaying exactly as
//! recorded: `expect = pass` cases stay equivalence-clean, and the
//! deliberately IC-inconsistent `expect = mismatch` fixture keeps being
//! *caught* — if the oracle ever stops flagging it, the harness has lost
//! its teeth and every green fuzz run is meaningless.

use semantic_sqo::fuzz::repro::{self, Expect};
use std::path::Path;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn corpus_replays_to_expectations() {
    let mut files: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "repro"))
        .collect();
    files.sort();
    assert!(files.len() >= 5, "corpus unexpectedly small: {files:?}");

    let mut saw_mismatch_fixture = false;
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable corpus file");
        let case = repro::parse(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        let report = repro::replay(&case);
        assert!(
            report.ok,
            "{} no longer replays as recorded: {}",
            path.display(),
            report.detail
        );
        if case.expect == Expect::Mismatch {
            saw_mismatch_fixture = true;
        }
    }
    assert!(
        saw_mismatch_fixture,
        "corpus must keep an expect=mismatch fixture proving the oracle detects unsound rewrites"
    );
}

#[test]
fn repro_format_round_trips() {
    let path = corpus_dir().join("injected_scope_reduction_mismatch.repro");
    let text = std::fs::read_to_string(path).expect("fixture exists");
    let case = repro::parse(&text).expect("fixture parses");
    let rendered = repro::render(case.seed, case.expect, &case.inputs);
    let reparsed = repro::parse(&rendered).expect("rendered form parses");
    assert_eq!(case.expect, reparsed.expect);
    assert_eq!(case.inputs.oql, reparsed.inputs.oql);
    assert_eq!(case.inputs.ics, reparsed.inputs.ics);
    assert_eq!(
        case.inputs.population.int_ranges,
        reparsed.inputs.population.int_ranges
    );
    assert_eq!(
        case.inputs.population.counts,
        reparsed.inputs.population.counts
    );
    // And the round-tripped case still replays to its expectation.
    assert!(
        repro::replay(&reparsed).ok,
        "round-tripped fixture must still mismatch"
    );
}
