//! The central correctness property of semantic query optimization:
//! every "semantically equivalent" query SQO produces must return
//! exactly the answers of the original on every database satisfying the
//! integrity constraints.
//!
//! We generate random university object bases (which satisfy the ICs by
//! construction), random queries from a template family, run the full
//! pipeline, and execute every variant.

use proptest::prelude::*;
use semantic_sqo::objdb::{execute, UniversityConfig};
use semantic_sqo::{SemanticOptimizer, Verdict};

fn normalize_rows(mut rows: Vec<Vec<semantic_sqo::datalog::Const>>) -> Vec<Vec<String>> {
    rows.sort();
    rows.into_iter()
        .map(|r| r.into_iter().map(|c| c.to_string()).collect())
        .collect()
}

/// A small family of query templates over the university schema.
fn query_template(idx: usize, age: i64, frag: &str) -> String {
    match idx % 5 {
        0 => format!("select x.name from x in Person where x.age < {age}"),
        1 => format!("select x.name from x in Student where x.age >= {age}"),
        2 => format!(
            "select z.name from x in Student, y in x.takes, z in y.is_taught_by \
             where x.name != \"{frag}\""
        ),
        3 => format!(
            "select x.student_id, z.salary from x in Student, y in x.takes, \
             z in y.is_taught_by where z.salary > {}",
            age * 1000
        ),
        _ => format!(
            "select list(x.name, v.number) from x in Student, y in x.takes, \
             z in y.is_section_of, v in z.has_sections where x.age < {age}"
        ),
    }
}

proptest! {
    // Each case builds a database and runs the pipeline; keep the count
    // moderate.
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 0,
        ..ProptestConfig::default()
    })]

    #[test]
    fn sqo_variants_preserve_answers(
        seed in 0u64..10_000,
        template in 0usize..5,
        age in 18i64..60,
        frag in "[a-z]{3,6}",
    ) {
        let data = UniversityConfig {
            persons: 40,
            students: 50,
            faculty: 12,
            courses: 8,
            sections_per_course: 2,
            takes_per_student: 3,
            seed,
            ..Default::default()
        }
        .build()
        .unwrap();

        let mut opt = SemanticOptimizer::university();
        // ICs that hold on the generated data by construction.
        opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).").unwrap();
        opt.add_constraint_text("ic IC1: Salary > 40000 <- faculty(X, N, A, Salary, R, Ad).").unwrap();

        let src = query_template(template, age, &frag);
        let report = opt.optimize(&src).unwrap();
        match &report.verdict {
            Verdict::Contradiction { .. } => {
                // A contradiction verdict must mean zero answers on any
                // IC-satisfying database.
                let plain = SemanticOptimizer::university();
                let t = plain
                    .translate(&semantic_sqo::oql::parse_oql(&src).unwrap())
                    .unwrap();
                let (rows, _) = execute(&data.db, &t.query).unwrap();
                prop_assert!(
                    rows.is_empty(),
                    "contradiction verdict but {} answers for `{src}`",
                    rows.len()
                );
            }
            Verdict::Equivalents(eqs) => {
                let (baseline, _) = execute(&data.db, &eqs[0].datalog).unwrap();
                let baseline = normalize_rows(baseline);
                for e in &eqs[1..] {
                    let (rows, _) = execute(&data.db, &e.datalog).unwrap();
                    prop_assert_eq!(
                        normalize_rows(rows),
                        baseline.clone(),
                        "variant diverges for `{}`:\n  original:  {}\n  variant:   {}\n  steps: {:?}",
                        src,
                        eqs[0].datalog,
                        e.datalog,
                        e.steps.iter().map(|s| s.to_string()).collect::<Vec<_>>()
                    );
                }
            }
        }
    }
}
