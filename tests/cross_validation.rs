//! Cross-validation between independent subsystems: the object store's
//! direct ASR materialization vs the Datalog engine's view
//! materialization, and the evaluator vs a hand-rolled object-graph
//! walker.

use semantic_sqo::datalog::eval::{answer_query, materialize};
use semantic_sqo::datalog::parser::{parse_query, parse_rule};
use semantic_sqo::datalog::program::Program;
use semantic_sqo::datalog::Const;
use semantic_sqo::objdb::{UniversityConfig, Value};

/// The store materializes ASR pairs by walking links; the Datalog engine
/// materializes the same view by semi-naive evaluation. They must agree.
#[test]
fn asr_materialization_agrees_with_datalog_views() {
    let mut data = UniversityConfig {
        students: 60,
        courses: 8,
        persons: 0,
        faculty: 10,
        ..Default::default()
    }
    .build()
    .unwrap();
    data.db
        .define_asr(
            "asr",
            "Student",
            &["takes", "is_section_of", "has_sections", "has_ta"],
        )
        .unwrap();
    // Store-side pairs.
    let store_pairs = {
        let q = parse_query("Q(X, W) <- asr(X, W)").unwrap();
        let (mut rows, _) = answer_query(&data.db.edb(), &q).unwrap();
        rows.sort();
        rows
    };
    // Engine-side: materialize the definition over the base relations.
    let program = Program::new(vec![parse_rule(
        "asr_check(X, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), has_ta(V, W)",
    )
    .unwrap()]);
    let (mat, _) = materialize(&data.db.edb(), &program).unwrap();
    let mut engine_pairs: Vec<Vec<Const>> = mat
        .relation(&"asr_check".into())
        .map(|r| r.tuples().to_vec())
        .unwrap_or_default();
    engine_pairs.sort();
    assert_eq!(store_pairs, engine_pairs);
    assert!(!store_pairs.is_empty(), "non-trivial materialization");
}

/// The Datalog evaluator agrees with a direct object-graph walk for a
/// 2-hop query.
#[test]
fn evaluator_agrees_with_graph_walk() {
    let data = UniversityConfig {
        students: 40,
        courses: 6,
        persons: 0,
        faculty: 8,
        ..Default::default()
    }
    .build()
    .unwrap();
    // Datalog: students and the professors of sections they take.
    let q = parse_query("Q(X, F) <- student(X, N, A, Sid, Ad), takes(X, Y), is_taught_by(Y, F)")
        .unwrap();
    let (mut rows, _) = answer_query(&data.db.edb(), &q).unwrap();
    rows.sort();
    // Graph walk over the store.
    let mut expected: Vec<Vec<Const>> = Vec::new();
    for s in data.db.extent("Student") {
        for sec in data.db.linked(*s, "takes").unwrap() {
            for f in data.db.linked(sec, "is_taught_by").unwrap() {
                let pair = vec![Const::Oid(s.0), Const::Oid(f.0)];
                if !expected.contains(&pair) {
                    expected.push(pair);
                }
            }
        }
    }
    expected.sort();
    assert_eq!(rows, expected);
}

/// Method results agree between direct invocation and the materialized
/// method relation.
#[test]
fn method_relation_agrees_with_direct_calls() {
    let data = UniversityConfig {
        faculty: 12,
        students: 0,
        persons: 0,
        courses: 0,
        ..Default::default()
    }
    .build()
    .unwrap();
    data.db
        .ensure_method_facts("taxes_withheld", &[Const::Real(0.25.into())])
        .unwrap();
    let q = parse_query("Q(X, V) <- taxes_withheld(X, 0.25, V)").unwrap();
    let (rows, _) = answer_query(&data.db.edb(), &q).unwrap();
    assert_eq!(rows.len(), 12);
    for row in rows {
        let Const::Oid(oid) = row[0] else { panic!() };
        let direct = data
            .db
            .call_method(
                "taxes_withheld",
                semantic_sqo::objdb::Oid(oid),
                &[Value::Real(0.25)],
            )
            .unwrap();
        assert_eq!(row[1], direct.to_const());
    }
}
