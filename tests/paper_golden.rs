//! Golden tests for every worked example in the paper: Example 1
//! (Section 2), Example 2 (Section 4.3), and Applications 1–4
//! (Section 5), end to end across the crates.

use semantic_sqo::datalog::parser::{parse_constraint, parse_query};
use semantic_sqo::datalog::residue::ResidueSet;
use semantic_sqo::datalog::search::{optimize, SearchConfig};
use semantic_sqo::datalog::transform::TransformContext;
use semantic_sqo::datalog::Literal;
use semantic_sqo::{SemanticOptimizer, Verdict};
use std::collections::BTreeMap;

/// Example 1: the relational warm-up. IC `Age > 30 ← faculty(…)`
/// contradicts a query asking for professors younger than 18.
#[test]
fn example1_residue_contradiction() {
    let ic = parse_constraint("ic: Age > 30 <- faculty(Sec, Fac, Age).").unwrap();
    let ctx = TransformContext::new(ResidueSet::compile(vec![ic]), vec![], BTreeMap::new());
    let q = parse_query(
        "Q(Name) <- student(St_id, Name), takes_section(St_id, Sec), \
         faculty(Sec, Fac_id, Age), Age < 18",
    )
    .unwrap();
    let out = optimize(&q, &ctx, &SearchConfig::default());
    assert!(out.is_contradiction());
}

/// Example 1 variant: without the contradiction, the residue *adds* the
/// restriction (`Q'` of the paper, pre-contradiction).
#[test]
fn example1_restriction_attachment() {
    let ic = parse_constraint("ic: Age > 30 <- faculty(Sec, Fac, Age).").unwrap();
    let ctx = TransformContext::new(ResidueSet::compile(vec![ic]), vec![], BTreeMap::new());
    let q =
        parse_query("Q(Name) <- student(St, Name), takes_section(St, Sec), faculty(Sec, F, Age)")
            .unwrap();
    let out = optimize(&q, &ctx, &SearchConfig::default());
    let found = out.variants().iter().any(|v| {
        v.query
            .body
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.to_string() == "Age > 30"))
    });
    assert!(found, "restriction Age > 30 should be attachable");
}

/// Example 2: the OQL → Datalog translation, checked structurally
/// against the paper's result
/// `Q(Name1, City) ← student(X, Name2), takes(X, Y), taught_by(Y, Z),
///  faculty(Z, Name1, W), address(W, City), Name2 = "john",
///  taxes_withheld(Z, 10%, V), V < 1000`.
#[test]
fn example2_full_translation() {
    let opt = SemanticOptimizer::university();
    let oql = semantic_sqo::oql::parse_oql(
        r#"select z.name, w.city
           from x in Student
                y in x.Takes
                z in y.Is_taught_by
                w in z.Address
           where x.name = "john" and z.taxes_withheld(10%) < 1000"#,
    )
    .unwrap();
    let t = opt.translate(&oql).unwrap();
    let q = &t.query;
    let text = q.to_string();
    // Projection Name1, City.
    assert!(text.starts_with("q(Name1, City) <- "), "{text}");
    // All eight conjuncts of the paper (attribute positions are full
    // arity here; the paper elides unused ones).
    for frag in [
        "student(X, Name2,",
        "takes(X, Y)",
        "is_taught_by(Y, Z)",
        "faculty(Z, Name1,",
        ", W)", // address OID inside the faculty atom
        "address(W,",
        "Name2 = \"john\"",
        "taxes_withheld(Z, 0.1, V)",
        "V < 1000",
    ] {
        assert!(text.contains(frag), "missing `{frag}` in: {text}");
    }
}

/// Application 1: IC3 refutes the Example 2 query.
#[test]
fn application1_contradiction() {
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text(
        "ic IC3: Value > 3000 <- taxes_withheld(X, 0.1, Value), faculty(X, N, A, S, R, Ad).",
    )
    .unwrap();
    let report = opt
        .optimize(
            r#"select z.name, w.city
               from x in Student
                    y in x.takes
                    z in y.is_taught_by
                    w in z.address
               where x.name = "john" and z.taxes_withheld(10%) < 1000"#,
        )
        .unwrap();
    assert!(report.is_contradiction());
}

/// Application 1 with the *raw ingredients*: IC1 (salary floor) and the
/// monotonicity consequence — we verify the derived IC3 form works while
/// IC1 alone does not refute the query (the paper derives IC3 manually).
#[test]
fn application1_requires_derived_ic3() {
    let mut weak = SemanticOptimizer::university();
    weak.add_constraint_text("ic IC1: Salary > 40000 <- faculty(X, N, A, Salary, R, Ad).")
        .unwrap();
    let report = weak
        .optimize(
            r#"select z.name
               from x in Student, y in x.takes, z in y.is_taught_by
               where z.taxes_withheld(10%) < 1000"#,
        )
        .unwrap();
    assert!(
        !report.is_contradiction(),
        "IC1 alone says nothing about taxes"
    );
}

/// Application 2: the full OQL-to-OQL rewrite.
#[test]
fn application2_oql_rewrite() {
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    let report = opt
        .optimize("select x.name from x in Person where x.age < 30")
        .unwrap();
    let rewrites: Vec<String> = report
        .proper_rewrites()
        .map(|e| e.oql.to_string())
        .collect();
    assert!(
        rewrites
            .iter()
            .any(|s| s
                == "select x.name\nfrom x in Person,\n     x not in Faculty\nwhere x.age < 30"),
        "{rewrites:#?}"
    );
}

/// Application 2, footnote 4: a stronger query bound (`age < 20`) still
/// triggers the reduction.
#[test]
fn application2_stronger_bound() {
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    let report = opt
        .optimize("select x.name from x in Person where x.age < 20")
        .unwrap();
    assert!(report
        .proper_rewrites()
        .any(|e| e.oql.to_string().contains("x not in Faculty")));
}

/// Application 3: key-based join reduction with the `list` constructor
/// retained verbatim.
#[test]
fn application3_key_rewrite_with_constructor() {
    let mut opt = SemanticOptimizer::university();
    let report = opt
        .optimize(
            r#"select list(x.student_id, t.employee_id)
               from x in Student
                    y in x.takes
                    z in y.is_taught_by
                    t in TA
                    v in t.takes
                    w in v.is_taught_by
               where z.name = w.name"#,
        )
        .unwrap();
    let target = report
        .proper_rewrites()
        .find(|e| {
            let s = e.oql.to_string();
            s.contains("z = w") && !s.contains("z.name = w.name")
        })
        .expect("paper rewrite");
    // Both the select constructor and the from clause survive.
    let text = target.oql.to_string();
    assert!(text.contains("select list(x.student_id, t.employee_id)"));
    assert!(text.contains("y in x.takes"));
    assert!(text.contains("w in v.is_taught_by"));
}

/// Application 4, query Q: ASR join elimination.
#[test]
fn application4_q_fold() {
    let mut opt = SemanticOptimizer::university();
    opt.add_view_text(
        "asr(X, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), has_ta(V, W)",
    )
    .unwrap();
    let report = opt
        .optimize(
            r#"select w
               from x in Student
                    y in x.takes
                    z in y.is_section_of
                    v in z.has_sections
                    w in v.has_ta
               where x.name = "james""#,
        )
        .unwrap();
    let folded = report
        .proper_rewrites()
        .find(|e| e.datalog.body.len() <= 3)
        .expect("folded variant");
    // Q'(W) ← student(X, Name), asr(X, W), Name = "james".
    let preds: Vec<&str> = folded
        .datalog
        .positive_atoms()
        .map(|a| a.pred.name())
        .collect();
    assert_eq!(preds.len(), 2);
    assert!(preds.contains(&"student"));
    assert!(preds.contains(&"asr"));
}

/// Application 4, query Q1: the ASR applies only after IC9's join
/// introduction, and the one-to-one constraint licenses the fold.
#[test]
fn application4_q1_join_introduction() {
    let mut opt = SemanticOptimizer::university();
    opt.add_view_text(
        "asr(X, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), has_ta(V, W)",
    )
    .unwrap();
    opt.add_constraint_text(
        "ic IC9: has_ta(V, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V).",
    )
    .unwrap();
    let report = opt
        .optimize(
            r#"select v
               from x in Student
                    y in x.takes
                    z in y.is_section_of
                    v in z.has_sections
               where x.name = "johnson""#,
        )
        .unwrap();
    // The paper's Q1'': student, asr, has_ta with V projected.
    let q1pp = report.proper_rewrites().find(|e| {
        let preds: Vec<&str> = e.datalog.positive_atoms().map(|a| a.pred.name()).collect();
        preds.contains(&"asr")
            && preds.contains(&"has_ta")
            && !preds.contains(&"takes")
            && !preds.contains(&"is_section_of")
            && !preds.contains(&"has_sections")
    });
    assert!(
        q1pp.is_some(),
        "expected Q1'' among: {:#?}",
        report
            .equivalents()
            .iter()
            .map(|e| e.datalog.to_string())
            .collect::<Vec<_>>()
    );
}

/// Without the one-to-one constraint on has_ta, the Q1'' shape — where
/// the projected section V hangs off the path only through has_ta —
/// must NOT be produced (it would change the query's meaning). We use a
/// schema where `has_ta`'s inverse is to-many, so the relationship is
/// functional but not one-to-one.
#[test]
fn application4_q1_fold_blocked_without_one_to_one() {
    let schema_src = r#"
        interface Student {
            extent Student;
            attribute string name;
            relationship Set<Section> takes inverse Section::taken_by;
        };
        interface Course {
            extent Course;
            relationship Set<Section> has_sections inverse Section::is_section_of;
        };
        interface TA {
            extent TA;
            relationship Set<Section> assists inverse Section::has_ta;
        };
        interface Section {
            extent Section;
            relationship Set<Student> taken_by inverse Student::takes;
            relationship Course is_section_of inverse Course::has_sections;
            relationship TA has_ta inverse TA::assists;
        };
    "#;
    let mut opt = SemanticOptimizer::new(semantic_sqo::Schema::parse(schema_src).unwrap());
    opt.add_view_text(
        "asr(X, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), has_ta(V, W)",
    )
    .unwrap();
    opt.add_constraint_text(
        "ic IC9: has_ta(V, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V).",
    )
    .unwrap();
    let report = opt
        .optimize(
            r#"select v
               from x in Student
                    y in x.takes
                    z in y.is_section_of
                    v in z.has_sections"#,
        )
        .unwrap();
    // In every variant, the projected V must stay connected to the course
    // chain through has_sections/is_section_of — hanging V off has_ta
    // alone (the Q1'' shape) is only sound with the one-to-one
    // constraint.
    let v = semantic_sqo::datalog::Term::var("V");
    for e in report.equivalents() {
        let v_atoms: Vec<&str> = e
            .datalog
            .positive_atoms()
            .filter(|a| a.args.contains(&v))
            .map(|a| a.pred.name())
            .collect();
        let chain_connected = v_atoms
            .iter()
            .any(|p| *p == "has_sections" || *p == "is_section_of");
        assert!(
            chain_connected,
            "unsound fold without the one-to-one constraint: {}",
            e.datalog
        );
    }
}

/// The verdict for an unoptimizable query keeps the original intact.
#[test]
fn original_always_first_and_unchanged() {
    let mut opt = SemanticOptimizer::university();
    let report = opt.optimize("select x.title from x in Course").unwrap();
    match &report.verdict {
        Verdict::Equivalents(v) => {
            assert!(v[0].delta.is_empty());
            assert!(v[0].steps.is_empty());
        }
        other => panic!("unexpected: {other:?}"),
    }
}
