//! Provenance and explain-layer tests over the paper's university queries:
//! golden derivation chains for the Application 2 scope reduction and the
//! Application 3 key-join elimination, plus the structural guarantees the
//! explain surface makes (non-empty provenance for every equivalent,
//! refuting-IC attribution for contradictions, per-run counter deltas).

use semantic_sqo::{SemanticOptimizer, Verdict};
use sqo_obs as obs;
use std::sync::Mutex;

/// Serializes the tests in this binary: `OptimizationReport::stats` is a
/// delta over the process-global observability registry, so concurrent
/// optimizer runs in sibling tests would bleed into each other's windows.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Application 2: the scope-reduction rewrite carries a one-step chain
/// naming the driving residue (anchored at `person`) and IC4 as source.
#[test]
fn scope_reduction_provenance_golden() {
    let _g = lock();
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    let report = opt
        .optimize("select x.name from x in Person where x.age < 30")
        .unwrap();
    let reduced = report
        .proper_rewrites()
        .find(|e| e.oql.to_string().contains("x not in Faculty"))
        .expect("scope-reduced variant");
    let chain = reduced.provenance();
    assert_eq!(chain.steps.len(), 1, "chain: {chain}");
    let step = &chain.steps[0];
    assert_eq!(step.kind, "scope-reduction");
    let residue = step.residue.as_deref().expect("driving residue named");
    assert!(
        residue.starts_with('r') && residue.ends_with("@person"),
        "residue id `{residue}` should be anchored at person"
    );
    let ic = step.ic.as_deref().expect("source IC named");
    assert!(
        ic.starts_with("IC4"),
        "source IC `{ic}` should trace to IC4"
    );
    assert!(step.detail.contains("faculty"), "detail: {}", step.detail);
}

/// Application 3: the full key-join elimination is a three-step chain —
/// key-equality introduction (driven by the KEY(Faculty.name) residue),
/// then removal of the implied name comparison, then elimination of the
/// now-redundant faculty join.
#[test]
fn key_join_elimination_provenance_golden() {
    let _g = lock();
    let mut opt = SemanticOptimizer::university();
    let report = opt
        .optimize(
            r#"select list(x.student_id, t.employee_id)
               from x in Student
                    y in x.takes
                    z in y.is_taught_by
                    t in TA
                    v in t.takes
                    w in v.is_taught_by
               where z.name = w.name"#,
        )
        .unwrap();
    let eliminated = report
        .proper_rewrites()
        .find(|e| {
            let s = e.oql.to_string();
            s.contains("z = w") && !s.contains("z.name = w.name") && e.steps.len() == 3
        })
        .expect("key-join-eliminated variant");
    let chain = eliminated.provenance();
    let kinds: Vec<&str> = chain.steps.iter().map(|s| s.kind).collect();
    assert_eq!(
        kinds,
        ["key-equality", "comparison-removal", "join-elimination"],
        "chain: {chain}"
    );
    let first = &chain.steps[0];
    assert_eq!(first.ic.as_deref(), Some("KEY(Faculty.name)"));
    let residue = first.residue.as_deref().expect("key residue named");
    assert!(residue.ends_with("@faculty"), "residue id `{residue}`");
    // The removal steps are entailment-driven (no residue of their own).
    assert!(chain.steps[1].residue.is_none());
    assert!(chain.steps[2].residue.is_none());
}

/// Every equivalent query — the unchanged original included — carries a
/// non-empty provenance chain, and it survives into `explain_json`.
#[test]
fn every_equivalent_has_nonempty_provenance() {
    let _g = lock();
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    opt.add_view_text(
        "asr(X, W) <- takes(X, Y), is_section_of(Y, Z), has_sections(Z, V), has_ta(V, W)",
    )
    .unwrap();
    for oql in [
        "select x.name from x in Person where x.age < 30",
        r#"select w
           from x in Student
                y in x.takes
                z in y.is_section_of
                v in z.has_sections
                w in v.has_ta
           where x.name = "james""#,
    ] {
        let report = opt.optimize(oql).unwrap();
        assert!(!report.equivalents().is_empty());
        for e in report.equivalents() {
            let chain = e.provenance();
            assert!(!chain.steps.is_empty(), "empty chain for {}", e.datalog);
            if e.delta.is_empty() {
                assert_eq!(chain.steps[0].kind, "original");
            } else {
                // Proper rewrites attribute every step to a residue, an
                // IC/view, or an entailment note.
                for s in &chain.steps {
                    assert!(
                        s.residue.is_some() || s.ic.is_some() || !s.detail.is_empty(),
                        "unattributed step in chain for {}",
                        e.datalog
                    );
                }
            }
        }
        let json = report.explain_json();
        assert!(json.contains("\"provenance\": [{"), "{json}");
        assert!(!json.contains("\"provenance\": []"), "{json}");
    }
}

/// Contradiction reports name the refuting IC and close the chain with a
/// `contradiction` step — both in the API and in the verdict payload.
#[test]
fn contradiction_provenance_names_refuting_ic() {
    let _g = lock();
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text(
        "ic IC3: Value > 3000 <- taxes_withheld(X, 0.1, Value), faculty(X, N, A, S, R, Ad).",
    )
    .unwrap();
    let report = opt
        .optimize(
            r#"select z.name, w.city
               from x in Student
                    y in x.takes
                    z in y.is_taught_by
                    w in z.address
               where x.name = "john" and z.taxes_withheld(10%) < 1000"#,
        )
        .unwrap();
    let Verdict::Contradiction { ic_name, .. } = &report.verdict else {
        panic!("expected contradiction, got {:?}", report.verdict);
    };
    assert_eq!(ic_name.as_deref(), Some("IC3"));
    let chain = report.contradiction_provenance().expect("chain present");
    let last = chain.steps.last().unwrap();
    assert_eq!(last.kind, "contradiction");
    assert_eq!(last.ic.as_deref(), Some("IC3"));
    let json = report.explain_json();
    assert!(json.contains("\"verdict\": \"contradiction\""));
    assert!(json.contains("\"ic\": \"IC3\""));
}

/// Union pruning attributes each dropped branch to its refuting IC.
#[test]
fn union_pruning_carries_contradiction_provenance() {
    let _g = lock();
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    let report = opt
        .optimize_union(
            "select x.name from x in Faculty where x.age < 20 \
             union select x.name from x in Student where x.age < 20",
        )
        .unwrap();
    let pruned = report.pruned_provenance();
    assert_eq!(pruned.len(), 1);
    let (branch, ic, chain) = &pruned[0];
    assert_eq!(*branch, 0, "the faculty branch is first in source order");
    assert!(
        ic.as_deref().is_some_and(|n| n.starts_with("IC4")),
        "refuting IC: {ic:?}"
    );
    assert_eq!(chain.steps.last().unwrap().kind, "contradiction");
}

/// The report's stats are a per-run delta: one optimizer query, the
/// Step-3 spans present, and the search counters live.
#[test]
fn report_stats_capture_per_run_counters() {
    let _g = lock();
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text("ic IC4: Age >= 30 <- faculty(X, N, Age, S, R, Ad).")
        .unwrap();
    let report = opt
        .optimize("select x.name from x in Person where x.age < 30")
        .unwrap();
    let stats = &report.stats;
    assert_eq!(stats.counter(obs::Counter::OptimizerQueries), 1);
    assert_eq!(stats.counter(obs::Counter::TranslateQueries), 1);
    assert!(stats.counter(obs::Counter::SearchLevels) > 0);
    assert!(stats.counter(obs::Counter::UnifyAttempts) > 0);
    assert!(stats.spans.contains_key("step3.search"));
    assert!(stats.spans.contains_key("step2.translate_query"));
    // A second run on the same optimizer reuses the compiled residues, so
    // its delta must not re-count compilation.
    let second = opt
        .optimize("select x.name from x in Person where x.age < 30")
        .unwrap();
    assert_eq!(second.stats.counter(obs::Counter::ResiduesAttached), 0);
    assert_eq!(second.stats.counter(obs::Counter::OptimizerQueries), 1);
}
