//! Property tests for the two concrete syntaxes: display → parse
//! round-trips for Datalog and OQL, and normalization idempotence.

use proptest::prelude::*;
use semantic_sqo::datalog::parser::{parse_constraint, parse_query};
use semantic_sqo::datalog::{
    Atom, CmpOp, Comparison, Constraint, ConstraintHead, Literal, Query, Term,
};
use semantic_sqo::oql::{is_normalized, normalize, parse_oql};

fn ident_lower() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("reserved words", |s| {
        !matches!(s.as_str(), "not" | "ic" | "true" | "false")
    })
}

fn ident_upper() -> impl Strategy<Value = String> {
    "[A-Z][A-Za-z0-9_]{0,6}"
}

fn dl_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        ident_upper().prop_map(Term::var),
        (-1000i64..1000).prop_map(Term::int),
        "[a-z ]{0,8}".prop_map(Term::str),
        (0u64..100).prop_map(Term::oid),
        any::<bool>().prop_map(|b| Term::Const(semantic_sqo::datalog::Const::Bool(b))),
    ]
}

fn dl_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn dl_atom() -> impl Strategy<Value = Atom> {
    (ident_lower(), prop::collection::vec(dl_term(), 1..4)).prop_map(|(p, args)| Atom::new(p, args))
}

fn dl_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        dl_atom().prop_map(Literal::Pos),
        dl_atom().prop_map(Literal::Neg),
        (dl_term(), dl_op(), dl_term())
            .prop_map(|(l, op, r)| Literal::Cmp(Comparison::new(l, op, r))),
    ]
}

fn dl_query() -> impl Strategy<Value = Query> {
    (
        prop::collection::vec(dl_term(), 0..3),
        prop::collection::vec(dl_literal(), 1..5),
    )
        .prop_map(|(proj, body)| Query::new("q", proj, body))
}

fn dl_constraint() -> impl Strategy<Value = Constraint> {
    let head = prop_oneof![
        Just(ConstraintHead::None),
        dl_atom().prop_map(ConstraintHead::Atom),
        dl_atom().prop_map(ConstraintHead::NegAtom),
        (dl_term(), dl_op(), dl_term())
            .prop_map(|(l, op, r)| ConstraintHead::Cmp(Comparison::new(l, op, r))),
    ];
    (head, prop::collection::vec(dl_literal(), 1..4)).prop_map(|(h, b)| Constraint::new(h, b))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Datalog queries survive a display → parse round-trip.
    #[test]
    fn datalog_query_roundtrip(q in dl_query()) {
        let text = q.to_string();
        let parsed = parse_query(&text)
            .unwrap_or_else(|e| panic!("reparse failed for `{text}`: {e}"));
        prop_assert_eq!(parsed, q);
    }

    /// Datalog constraints survive a display → parse round-trip.
    #[test]
    fn datalog_constraint_roundtrip(c in dl_constraint()) {
        let text = c.to_string();
        let parsed = parse_constraint(&text)
            .unwrap_or_else(|e| panic!("reparse failed for `{text}`: {e}"));
        prop_assert_eq!(parsed, c);
    }

    /// Canonical keys are invariant under consistent variable renaming.
    #[test]
    fn canonical_key_rename_invariant(q in dl_query(), suffix in "[0-9]{1,2}") {
        let renamed = {
            let mut subst = semantic_sqo::datalog::Subst::new();
            for v in q.vars() {
                subst.bind(
                    v,
                    Term::var(format!("{}R{suffix}", v.name())),
                );
            }
            subst.apply_query(&q)
        };
        prop_assert_eq!(q.canonical_key(), renamed.canonical_key());
    }
}

fn oql_sources() -> impl Strategy<Value = String> {
    // Structured OQL generation over the university vocabulary: valid
    // member names matter for the parser, not the schema (parsing is
    // schema-independent).
    let member = prop_oneof![Just("name"), Just("age"), Just("takes"), Just("address"),];
    let cmp = prop_oneof![
        Just("="),
        Just("!="),
        Just("<"),
        Just(">"),
        Just("<="),
        Just(">=")
    ];
    (member, cmp, 0i64..100).prop_map(|(m, op, k)| {
        format!(
            "select x.{m} from x in Person, y in x.takes where x.age {op} {k} and y.number = \"s\""
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// OQL display → parse round-trips.
    #[test]
    fn oql_roundtrip(src in oql_sources()) {
        let q = parse_oql(&src).unwrap();
        let reparsed = parse_oql(&q.to_string())
            .unwrap_or_else(|e| panic!("reparse failed for `{q}`: {e}"));
        prop_assert_eq!(reparsed, q);
    }

    /// Normalization is idempotent and always reaches one-dot form.
    #[test]
    fn normalize_idempotent(depth in 1usize..5) {
        let path: String = std::iter::repeat_n(".takes", depth).collect();
        let src = format!("select x.name from x in Student where x{path}.number = \"a\"");
        let q = parse_oql(&src).unwrap();
        let n = normalize(&q);
        prop_assert!(is_normalized(&n), "{n}");
        prop_assert_eq!(normalize(&n), n);
    }
}
