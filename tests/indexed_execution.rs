//! Cross-crate tests for the indexed execution engine and the
//! index-aware cost model:
//!
//! * objdb-level differential — indexed and scan-only execution agree on
//!   the generated university store across representative query shapes;
//! * the cost model prefers an index probe over a scan *exactly* when
//!   the index exists (same data, schemas differing only in a `key`
//!   declaration);
//! * range-probe pricing is monotone in the true in-range count;
//! * the extent-first anti-join prefix is deduplicated per
//!   (extent, OID) pair;
//! * [`semantic_sqo::OptimizationReport::best_plan`] surfaces the
//!   cost-model choice, picking the index-reaching rewrite.

use semantic_sqo::datalog::parser::parse_query;
use semantic_sqo::datalog::{Literal, Query};
use semantic_sqo::objdb::exec::rewrite_for_extents;
use semantic_sqo::objdb::{
    estimate_cost, execute_with, ExecOptions, ObjectDb, UniversityConfig, Value,
};
use semantic_sqo::odl::Schema;
use semantic_sqo::SemanticOptimizer;

fn sorted_answers(
    db: &ObjectDb,
    q: &Query,
    opts: ExecOptions,
) -> Vec<Vec<semantic_sqo::datalog::Const>> {
    let (mut rows, _) = execute_with(db, q, opts).unwrap_or_else(|e| panic!("[{q}]: {e}"));
    rows.sort();
    rows
}

/// Indexed and scan-only execution return identical answer sets on the
/// generated university store, across selections, ranges, joins through
/// relationships, negation, and method relations.
#[test]
fn objdb_indexed_matches_scan_only() {
    let data = UniversityConfig::default().build().unwrap();
    let db = &data.db;
    let queries = [
        "Q(X, N) <- faculty(X, N, A, S, R, Ad)",
        "Q(N) <- faculty(X, N, A, S, R, Ad), A < 35",
        "Q(N) <- faculty(X, N, A, S, R, Ad), S >= 60000, S < 100000",
        "Q(N) <- faculty(X, N, A, S, R, Ad), R = \"professor\"",
        "Q(N) <- person(X, N, A, Ad), not faculty(X, N2, A2, S, R, Ad2)",
        "Q(SN, FN) <- is_taught_by(Sec, F), faculty(F, FN, A, S, R, Ad), \
         section(Sec, SN)",
        "Q(N, V) <- faculty(X, N, A, S, R, Ad), taxes_withheld(X, 0.2, V), A >= 40",
        "Q(TN) <- takes(T, Sec), is_taught_by(Sec, F), faculty(F, FN, A, S, R, Ad), \
         ta(T, TN, TA2, Sid, E, Ad2), A < 50",
    ];
    for src in queries {
        let q = parse_query(src).unwrap();
        assert_eq!(
            sorted_answers(db, &q, ExecOptions::default()),
            sorted_answers(db, &q, ExecOptions::scan_only()),
            "indexed vs scan-only disagree on [{src}]"
        );
    }
}

/// Two stores with identical data whose schemas differ only in a
/// `key tag` declaration: the equality selection on `tag` must be priced
/// cheaper exactly when the key (and therefore its hash index) exists.
#[test]
fn cost_model_prefers_hash_probe_exactly_when_indexed() {
    let keyed = r#"
        interface Item {
            extent Item;
            key tag;
            attribute string tag;
            attribute string color;
        };
    "#;
    let unkeyed = keyed.replace("key tag;\n", "");
    let build = |odl: &str| {
        let mut db = ObjectDb::new(Schema::parse(odl).unwrap());
        for i in 0..300 {
            db.create(
                "Item",
                vec![
                    ("tag", Value::from(format!("t{i}"))),
                    (
                        "color",
                        Value::from(if i % 2 == 0 { "red" } else { "blue" }),
                    ),
                ],
            )
            .unwrap();
        }
        db
    };
    let with_index = build(keyed);
    let without_index = build(&unkeyed);
    let q = parse_query("Q(X) <- item(X, \"t7\", Color)").unwrap();

    {
        let edb = with_index.edb();
        let rel = edb.relation(&"item".into()).expect("item relation");
        assert!(rel.has_hash_index(1), "key tag must declare a hash index");
    }
    {
        let edb = without_index.edb();
        let rel = edb.relation(&"item".into()).expect("item relation");
        assert!(!rel.has_hash_index(1), "no key, no index");
    }

    let probe = estimate_cost(&with_index, &q);
    let scan = estimate_cost(&without_index, &q);
    assert!(
        probe < scan / 5.0,
        "hash probe must be priced well below the scan: probe={probe} scan={scan}"
    );

    // Same stores, a selection on the never-indexed column: identical
    // estimates — the model only discounts where an index actually exists.
    let q_color = parse_query("Q(X) <- item(X, Tag, \"red\")").unwrap();
    let a = estimate_cost(&with_index, &q_color);
    let b = estimate_cost(&without_index, &q_color);
    assert_eq!(a, b, "unindexed column must price identically: {a} vs {b}");
}

/// Range-probe pricing tracks the true in-range count: a narrow age
/// window must be priced below a wide one, which stays below the
/// unrestricted scan.
#[test]
fn cost_model_range_probe_monotone_in_range_width() {
    let data = UniversityConfig::default().build().unwrap();
    let db = &data.db;
    let narrow = parse_query("Q(N) <- faculty(X, N, A, S, R, Ad), A < 28").unwrap();
    let wide = parse_query("Q(N) <- faculty(X, N, A, S, R, Ad), A < 60").unwrap();
    let full = parse_query("Q(N) <- faculty(X, N, A, S, R, Ad)").unwrap();
    let (cn, cw, cf) = (
        estimate_cost(db, &narrow),
        estimate_cost(db, &wide),
        estimate_cost(db, &full),
    );
    assert!(cn < cw, "narrow range must cost less: {cn} vs {cw}");
    assert!(
        cw < cf,
        "any range must undercut the full scan: {cw} vs {cf}"
    );
}

/// Satellite: several anti-joins (or repeated class atoms) restricting
/// the same OID must prepend the extent scan once, not once per literal.
#[test]
fn extent_prefix_deduplicated_per_oid() {
    let data = UniversityConfig::default().build().unwrap();
    let db = &data.db;
    let q = parse_query(
        "Q(N) <- person(X, N, A, Ad), person(X, N, A, Ad), \
         not faculty(X, N2, A2, S, R, Ad2), not ta(X, N3, A3, Sid, E, Ad3)",
    )
    .unwrap();
    let physical = rewrite_for_extents(db, &q);
    let extent_scans = physical
        .body
        .iter()
        .filter(|l| matches!(l, Literal::Pos(a) if a.pred.name() == "person__extent"))
        .count();
    assert_eq!(
        extent_scans, 1,
        "expected exactly one person__extent prefix, got body: {physical}"
    );
    // The decomposition must not change answers.
    assert_eq!(
        sorted_answers(db, &q, ExecOptions::default()),
        sorted_answers(db, &q, ExecOptions::scan_only()),
    );
}

/// End-to-end: `best_plan` runs the index-aware chooser over the Step-3
/// equivalents and picks a plan at least as cheap as the original — and
/// with the salary IC in place, strictly cheaper, because the rewrite
/// reaches the ordered salary index the original query cannot use.
#[test]
fn best_plan_picks_index_reaching_rewrite() {
    // An IC-consistent store: professors (and only professors) earn at
    // or above the IC_PROF salary bound.
    let mut db = ObjectDb::new(semantic_sqo::odl::fixtures::university_schema());
    for i in 0..400usize {
        let professor = i % 10 == 0;
        db.create(
            "Faculty",
            vec![
                ("name", Value::from(format!("f{i}"))),
                ("age", Value::Int(30 + (i % 40) as i64)),
                (
                    "salary",
                    Value::Real(if professor {
                        90_000.0 + i as f64
                    } else {
                        40_000.0 + (i * 7 % 49_000) as f64
                    }),
                ),
                (
                    "rank",
                    Value::from(if professor { "professor" } else { "lecturer" }),
                ),
            ],
        )
        .unwrap();
    }
    let db = &db;
    let mut opt = SemanticOptimizer::university();
    opt.add_constraint_text(
        "ic IC_PROF: Salary >= 90000 <- faculty(X, N, Age, Salary, Rank, Ad), \
         Rank = \"professor\".",
    )
    .unwrap();
    let report = opt
        .optimize("select x.name from x in Faculty where x.rank = \"professor\"")
        .unwrap();
    let (best, eq, costs) = report.best_plan(db).expect("equivalents exist");
    assert_eq!(costs.len(), report.equivalents().len());
    let original_cost = estimate_cost(db, &report.datalog);
    assert!(
        costs[best] < original_cost,
        "chosen plan {} must undercut the original: {} vs {original_cost}",
        eq.datalog,
        costs[best]
    );
    // The winning plan carries the IC-introduced salary bound that makes
    // the ordered-index range probe possible.
    assert!(
        eq.datalog
            .body
            .iter()
            .any(|l| matches!(l, Literal::Cmp(c) if c.to_string().contains("90000"))),
        "winner should carry the salary bound: {}",
        eq.datalog
    );
    // And it really answers identically under both executors.
    assert_eq!(
        sorted_answers(db, &eq.datalog, ExecOptions::default()),
        sorted_answers(db, &report.datalog, ExecOptions::scan_only()),
    );
}
