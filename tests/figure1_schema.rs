//! Golden test for Figure 1 + Step 1: the university schema and its
//! Datalog translation (Section 4.2).

use semantic_sqo::datalog::{ConstraintHead, Literal};
use semantic_sqo::odl::fixtures::university_schema;
use semantic_sqo::translate::{translate_schema, RelKind};

#[test]
fn figure1_classes_and_hierarchy() {
    let s = university_schema();
    // The seven classes of the figure plus the Address structure.
    let names: Vec<&str> = s.classes().iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["Person", "Employee", "Faculty", "Student", "TA", "Course", "Section"]
    );
    assert_eq!(s.structures()[0].name, "Address");
    // Heavy arrows of the figure: the class hierarchy.
    for (sub, sup) in [
        ("Employee", "Person"),
        ("Faculty", "Employee"),
        ("Student", "Person"),
        ("TA", "Student"),
    ] {
        assert!(s.is_strict_subclass_of(sub, sup), "{sub} < {sup}");
    }
    // Thin arrows: relationships with inverses.
    for (class, rel, target) in [
        ("Student", "takes", "Section"),
        ("Section", "taken_by", "Student"),
        ("Faculty", "teaches", "Section"),
        ("Section", "is_taught_by", "Faculty"),
        ("Course", "has_sections", "Section"),
        ("Section", "is_section_of", "Course"),
        ("Section", "has_ta", "TA"),
        ("TA", "assists", "Section"),
    ] {
        let c = s.class(class).unwrap();
        let r = c
            .relationships
            .iter()
            .find(|r| r.name == rel)
            .unwrap_or_else(|| panic!("{class}::{rel}"));
        assert_eq!(r.target, target);
        assert!(r.inverse.is_some());
    }
}

#[test]
fn step1_produces_one_relation_per_schema_element() {
    let s = university_schema();
    let cat = translate_schema(&s);
    let classes = cat
        .relations
        .iter()
        .filter(|r| matches!(r.kind, RelKind::Class { .. }))
        .count();
    let structs = cat
        .relations
        .iter()
        .filter(|r| matches!(r.kind, RelKind::Struct { .. }))
        .count();
    let rels = cat
        .relations
        .iter()
        .filter(|r| matches!(r.kind, RelKind::Relationship { .. }))
        .count();
    let methods = cat
        .relations
        .iter()
        .filter(|r| matches!(r.kind, RelKind::Method { .. }))
        .count();
    assert_eq!(classes, 7);
    assert_eq!(structs, 1);
    assert_eq!(rels, 8);
    assert_eq!(methods, 1);
}

#[test]
fn step1_constraint_families_all_present() {
    let s = university_schema();
    let cat = translate_schema(&s);
    let named = |prefix: &str| {
        cat.constraints
            .iter()
            .filter(|c| c.name.as_deref().is_some_and(|n| n.starts_with(prefix)))
            .count()
    };
    // 1. OID identification: 2 per relationship (8); 1 per structure
    //    attribute *per class relation carrying it* (address appears in
    //    Person and each of its 4 subclasses); 1 per method.
    assert_eq!(named("OID("), 8 * 2 + 5 + 1);
    // 2. Subclass hierarchy: one per subclass edge.
    assert_eq!(named("SUB("), 4);
    // 3. Inverse relationships: two per pair (one per direction).
    assert_eq!(named("INV("), 8);
    // 4. Functionality: every to-one side; one-to-one: has_ta/assists.
    assert!(named("FUN(") >= 3); // is_section_of, is_taught_by, has_ta, assists
    assert_eq!(named("1-1("), 2);
    // 5. Keys: Person.name inherited by its 4 subclasses; Course.number.
    assert_eq!(named("KEY("), 5 + 1);
}

#[test]
fn paper_taught_by_typing_ic_shape() {
    // Section 4.3 relies on `faculty(Z, …) ← taught_by(Y, Z)` to type z.
    let s = university_schema();
    let cat = translate_schema(&s);
    let ic = cat
        .constraints
        .iter()
        .find(|c| c.name.as_deref() == Some("OID(Section.is_taught_by,Faculty)"))
        .expect("typing IC");
    let ConstraintHead::Atom(h) = &ic.head else {
        panic!()
    };
    assert_eq!(h.pred.name(), "faculty");
    let [Literal::Pos(b)] = ic.body.as_slice() else {
        panic!()
    };
    assert_eq!(b.pred.name(), "is_taught_by");
    assert_eq!(h.args[0], b.args[1], "head OID is the relationship target");
}

#[test]
fn rule1_attribute_layout_simple_then_struct_inherited_first() {
    let s = university_schema();
    let cat = translate_schema(&s);
    let ta = cat.class_relation("TA").unwrap();
    let arg_names: Vec<&str> = ta.args.iter().map(|a| a.name.as_str()).collect();
    // OID, simple (name, age from Person; student_id from Student;
    // employee_id from TA), then structure OIDs (address).
    assert_eq!(
        arg_names,
        vec!["OID", "name", "age", "student_id", "employee_id", "address"]
    );
}
